package experiments

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/sim/timewarp"
	"repro/internal/stats"
	"repro/internal/vectors"
)

// defaultModel shortens stats.DefaultCostModel calls.
func defaultModel() stats.CostModel { return stats.DefaultCostModel() }

// E3Activity reproduces the oblivious/event-driven trade-off: "at low
// activity levels, redundant evaluations are an enormous overhead; at
// higher activity levels, the elimination of the event queue can lead to a
// performance advantage".
func E3Activity(s Scale) (*Table, error) {
	n := 1500
	vecs := 25
	if s == Full {
		n = 8000
		vecs = 50
	}
	c, err := sizedCircuit(n, 11, gen.Unit)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E3",
		Title:  "event-driven vs oblivious across input activity",
		Claim:  "the appropriateness of the oblivious algorithm is highly dependent upon the activity within a circuit",
		Header: []string{"activity", "evd-evals", "obl-evals", "evd-modeled", "obl-modeled", "obl/evd"},
	}
	for _, act := range []float64{0.01, 0.05, 0.1, 0.3, 0.6, 1.0} {
		w, err := randomWorkload(c, vecs, 40, act, 13)
		if err != nil {
			return nil, err
		}
		base, err := baselineFor(w)
		if err != nil {
			return nil, err
		}
		obl, err := core.Simulate(w.c, w.stim, w.until, core.Options{
			Engine: core.EngineOblivious, LPs: 1, System: logic.TwoValued,
		})
		if err != nil {
			return nil, err
		}
		ratio := obl.Modeled / base.Modeled
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", act),
			d(base.SeqWork.Evaluations),
			d(obl.Metrics.Total(metrics.Evaluations)),
			f2(base.Modeled / 1e6), f2(obl.Modeled / 1e6), f2(ratio),
		})
	}
	t.Notes = append(t.Notes,
		"modeled times in model-milliseconds; obl/evd < 1 means oblivious wins",
		"oblivious evaluation count is constant (gates x boundaries) regardless of activity")
	return t, nil
}

// E4Partitioners compares the Section III heuristics on cut size, load
// balance, and delivered parallel performance.
func E4Partitioners(s Scale) (*Table, error) {
	n := 1500
	vecs := 20
	annealMoves := 40_000
	if s == Full {
		n = 6000
		vecs = 40
		annealMoves = 400_000
	}
	c, err := sizedCircuit(n, 17, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.5, 17)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E4",
		Title:  "partitioning heuristics at 8 LPs",
		Claim:  "the emphasis has been on developing efficient heuristics with near optimal results (strings, cones, min-cut, annealing)",
		Header: []string{"method", "cut-links", "imbalance", "sync-speedup", "tw-speedup"},
	}
	weights := partition.WeightsUniform(c)
	for _, m := range []partition.Method{
		partition.MethodRandom, partition.MethodContiguous, partition.MethodStrings,
		partition.MethodCones, partition.MethodLevels, partition.MethodKL,
		partition.MethodFM, partition.MethodAnneal, partition.MethodMultilevel,
	} {
		p, err := partition.New(m, c, 8, partition.Options{Seed: 3, AnnealMoves: annealMoves})
		if err != nil {
			return nil, err
		}
		q := p.Evaluate(c, weights)
		spSync, _, err := speedupOf(w, base, core.Options{
			Engine: core.EngineSync, LPs: 8, Partition: m, PartitionSeed: 3,
		})
		if err != nil {
			return nil, err
		}
		spTW, _, err := speedupOf(w, base, core.Options{
			Engine: core.EngineTimeWarp, LPs: 8, Partition: m, PartitionSeed: 3,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.String(), d(q.CutLinks), f2(q.Imbalance), f2(spSync), f2(spTW),
		})
	}
	return t, nil
}

// E5Granularity sweeps gates-per-LP at a fixed machine size: "only one
// gate per LP can result in high overhead processing incoming messages,
// while only one LP per processor can result in unnecessarily blocked
// computation or high rollback overheads ... the optimum granularity is
// somewhere between these two extremes."
//
// The machine is fixed at 8 processors. The circuit is 32 independent
// inverter chains, four of them hot (inputs toggling every vector) and the
// rest nearly idle, partitioned contiguously — the natural per-module
// assignment. Few LPs trap all hot chains on few processors (imbalance);
// many LPs slice every chain so that its internal traffic becomes
// messages (overhead); the optimum sits in between. The modeled processor
// time is the round-robin sum of its co-located LPs' busy times.
func E5Granularity(s Scale) (*Table, error) {
	chainLen := 64
	vecs := 20
	if s == Full {
		chainLen = 256
		vecs = 40
	}
	const procs = 8
	const chains = 32
	const hotChains = 4
	b := circuit.NewBuilder()
	for ch := 0; ch < chains; ch++ {
		in := b.Input(fmt.Sprintf("in%d", ch))
		prev := in
		for g := 0; g < chainLen; g++ {
			prev = b.Gate(circuit.Not, fmt.Sprintf("c%dg%d", ch, g), prev)
		}
		b.Output(fmt.Sprintf("out%d", ch), prev)
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Hot chains toggle every vector; cold chains only set their initial
	// value.
	var chs []vectors.Change
	for _, in := range c.Inputs {
		chs = append(chs, vectors.Change{Time: 0, Input: in, Value: logic.Zero})
	}
	period := circuit.Tick(4 * chainLen)
	for k := 1; k <= vecs; k++ {
		t := circuit.Tick(k) * period
		for i := 0; i < hotChains; i++ {
			chs = append(chs, vectors.Change{Time: t, Input: c.Inputs[i], Value: logic.FromBool(k%2 == 1)})
		}
	}
	stim := &vectors.Stimulus{Changes: chs, End: circuit.Tick(vecs) * period}
	stim.Sort()
	w := &workload{c: c, stim: stim, until: core.Horizon(c, stim)}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	m := defaultModel()
	seqTime := stats.SequentialTime(m,
		base.SeqWork.Evaluations, base.SeqWork.EventsApplied, base.SeqWork.EventsScheduled)
	t := &Table{
		ID:     "E5",
		Title:  "speedup vs LP granularity on a fixed 8-processor machine",
		Claim:  "the optimum granularity is somewhere between these two extremes",
		Header: []string{"LPs", "gates/LP", "tw-speedup", "proc-imbalance", "msgs/event"},
	}
	for _, lps := range []int{8, 16, 32, 64, 128, 256, 512} {
		if lps > c.NumGates()/2 {
			break
		}
		_, rep, err := speedupOf(w, base, core.Options{
			Engine: core.EngineTimeWarp, LPs: lps, Partition: partition.MethodContiguous,
		})
		if err != nil {
			return nil, err
		}
		procTime := make([]float64, procs)
		for i, lp := range rep.Stats.LPs {
			procTime[i%procs] += m.Busy(lp)
		}
		var worst, total float64
		for _, pt := range procTime {
			total += pt
			if pt > worst {
				worst = pt
			}
		}
		worst += float64(rep.Metrics.Globals.GVTRounds) * m.GVT(procs)
		imb := worst * float64(procs) / total
		tot := rep.Metrics.Counters()
		msgsPerEvent := 0.0
		if tot.EventsApplied > 0 {
			msgsPerEvent = float64(tot.MessagesSent) / float64(tot.EventsApplied)
		}
		t.Rows = append(t.Rows, []string{
			d(lps), d(c.NumGates() / lps), f2(stats.Speedup(seqTime, worst)), f2(imb), f2(msgsPerEvent),
		})
	}
	t.Notes = append(t.Notes, "few LPs: hot chains trapped per processor; many LPs: chain traffic becomes messages")
	return t, nil
}

// E6StateSaving compares Time Warp's state saving policies: "incremental
// state saving is crucial to achieving good performance with optimistic
// algorithms."
func E6StateSaving(s Scale) (*Table, error) {
	n := 1500
	vecs := 20
	if s == Full {
		n = 6000
		vecs = 40
	}
	c, err := sizedCircuit(n, 23, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.6, 23)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E6",
		Title:  "Time Warp state saving: incremental vs full copy (8 LPs)",
		Claim:  "incremental state saving is crucial to achieving good performance with optimistic algorithms",
		Header: []string{"policy", "saved-words", "words/step", "rollbacks", "speedup"},
	}
	for _, pol := range []struct {
		name string
		ss   timewarp.StateSaving
	}{{"incremental", timewarp.Incremental}, {"full-copy", timewarp.FullCopy}} {
		opts := core.Options{
			Engine: core.EngineTimeWarp, LPs: 8,
			Partition: partition.MethodFM, PartitionSeed: 5,
			StateSaving: pol.ss,
		}
		sp, rep, err := speedupOf(w, base, opts)
		if err != nil {
			return nil, err
		}
		tot := rep.Metrics.Counters()
		perStep := 0.0
		if tot.StateSaves > 0 {
			perStep = float64(tot.StateSavedWords) / float64(tot.StateSaves)
		}
		t.Rows = append(t.Rows, []string{
			pol.name, d(tot.StateSavedWords), f2(perStep), d(tot.Rollbacks), f2(sp),
		})
	}
	return t, nil
}

// E7Cancellation compares aggressive and lazy cancellation: "Gafni's lazy
// cancellation strategy reduces the impact of rollback ... if the right
// event had been calculated for the wrong reasons, the receiving processor
// is not inhibited."
func E7Cancellation(s Scale) (*Table, error) {
	n := 1200
	vecs := 20
	if s == Full {
		n = 5000
		vecs = 40
	}
	c, err := sizedCircuit(n, 29, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.6, 29)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E7",
		Title:  "Time Warp cancellation: aggressive vs lazy (8 LPs, random partition)",
		Claim:  "lazy cancellation waits to cancel the message until it is known that the wrong message had been sent",
		Header: []string{"policy", "rollbacks", "antis-sent", "events-undone", "speedup"},
	}
	// Random partitioning maximizes cross-LP traffic and rollback pressure,
	// where the cancellation policy matters.
	for _, eng := range []core.Engine{core.EngineTimeWarp, core.EngineTimeWarpLazy} {
		sp, rep, err := speedupOf(w, base, core.Options{
			Engine: eng, LPs: 8, Partition: partition.MethodRandom, PartitionSeed: 5,
		})
		if err != nil {
			return nil, err
		}
		tot := rep.Metrics.Counters()
		name := "aggressive"
		if eng == core.EngineTimeWarpLazy {
			name = "lazy"
		}
		t.Rows = append(t.Rows, []string{
			name, d(tot.Rollbacks), d(tot.AntiMessagesSent), d(tot.EventsRolledBack), f2(sp),
		})
	}
	return t, nil
}

// E8NullMessages measures conservative synchronization overheads: null
// traffic per committed event for the eager and demand protocols, the
// global-quiescence cost of deadlock recovery, and the lookahead effect.
func E8NullMessages(s Scale) (*Table, error) {
	n := 1200
	vecs := 20
	if s == Full {
		n = 5000
		vecs = 40
	}
	t := &Table{
		ID:     "E8",
		Title:  "conservative variants: null traffic and lookahead (8 LPs)",
		Claim:  "deadlock prevention is usually accomplished via null messages ... deadlock detection via circulating marker algorithms",
		Header: []string{"delays", "variant", "nulls", "nulls/event", "speedup"},
	}
	for _, delays := range []struct {
		name string
		spec gen.DelaySpec
	}{{"unit", gen.Unit}, {"fine(1..10)", gen.Fine(10, 31)}} {
		c, err := sizedCircuit(n, 31, delays.spec)
		if err != nil {
			return nil, err
		}
		w, err := randomWorkload(c, vecs, 40, 0.5, 31)
		if err != nil {
			return nil, err
		}
		base, err := baselineFor(w)
		if err != nil {
			return nil, err
		}
		for _, eng := range []core.Engine{core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect} {
			sp, rep, err := speedupOf(w, base, core.Options{
				Engine: eng, LPs: 8, Partition: partition.MethodFM, PartitionSeed: 7,
			})
			if err != nil {
				return nil, err
			}
			tot := rep.Metrics.Counters()
			perEvent := 0.0
			if tot.EventsApplied > 0 {
				perEvent = float64(tot.NullsSent) / float64(tot.EventsApplied)
			}
			t.Rows = append(t.Rows, []string{
				delays.name, eng.String(), d(tot.NullsSent), f2(perEvent), f2(sp),
			})
		}
	}
	t.Notes = append(t.Notes, "larger delays mean larger lookahead: fewer nulls per unit of simulated time")
	return t, nil
}

// E9TimingGranularity tests the closing synthesis of Section VI: "for
// coarse timing granularity a synchronous algorithm is sufficient and for
// fine timing granularity an optimistic asynchronous algorithm is needed."
func E9TimingGranularity(s Scale) (*Table, error) {
	n := 1500
	vecs := 20
	if s == Full {
		n = 6000
		vecs = 40
	}
	t := &Table{
		ID:     "E9",
		Title:  "engines under coarse (unit) and fine (random 1..16) delays, 8 LPs",
		Claim:  "for coarse timing granularity a synchronous algorithm is sufficient and for fine timing granularity an optimistic asynchronous algorithm is needed",
		Header: []string{"delays", "events/timestep", "sync", "cmb", "timewarp"},
	}
	for _, delays := range []struct {
		name string
		spec gen.DelaySpec
	}{{"unit", gen.Unit}, {"fine(1..16)", gen.Fine(16, 37)}} {
		c, err := sizedCircuit(n, 37, delays.spec)
		if err != nil {
			return nil, err
		}
		w, err := randomWorkload(c, vecs, 50, 0.5, 37)
		if err != nil {
			return nil, err
		}
		base, err := baselineFor(w)
		if err != nil {
			return nil, err
		}
		simult := 0.0
		if base.SeqWork.Steps > 0 {
			simult = float64(base.SeqWork.EventsApplied) / float64(base.SeqWork.Steps)
		}
		row := []string{delays.name, f2(simult)}
		for _, eng := range []core.Engine{core.EngineSync, core.EngineCMB, core.EngineTimeWarp} {
			sp, _, err := speedupOf(w, base, core.Options{
				Engine: eng, LPs: 8, Partition: partition.MethodFM, PartitionSeed: 9,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "events/timestep is the event simultaneity coarse granularity buys the synchronous algorithm")
	return t, nil
}

// E10PreSimulation tests the pre-simulation workload estimation proposal:
// measured evaluation frequencies as partitioner weights.
func E10PreSimulation(s Scale) (*Table, error) {
	hot, cold := 400, 400
	cycles := 30
	if s == Full {
		hot, cold = 2000, 2000
		cycles = 60
	}
	// A deliberately skewed circuit: a hot half toggling every vector and
	// a cold half that almost never switches.
	b := circuit.NewBuilder()
	var hotIn, coldIn []circuit.GateID
	for i := 0; i < 8; i++ {
		hotIn = append(hotIn, b.Input(fmt.Sprintf("h%d", i)))
	}
	for i := 0; i < 8; i++ {
		coldIn = append(coldIn, b.Input(fmt.Sprintf("c%d", i)))
	}
	prev := hotIn[0]
	for i := 0; i < hot; i++ {
		prev = b.Gate(circuit.Xor, fmt.Sprintf("hx%d", i), prev, hotIn[i%8])
	}
	b.Output("hot", prev)
	prevC := coldIn[0]
	for i := 0; i < cold; i++ {
		prevC = b.Gate(circuit.And, fmt.Sprintf("cx%d", i), prevC, coldIn[i%8])
	}
	b.Output("cold", prevC)
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	var chs []vectors.Change
	for _, in := range c.Inputs {
		chs = append(chs, vectors.Change{Time: 0, Input: in, Value: logic.Zero})
	}
	for k := 1; k <= cycles; k++ {
		tck := circuit.Tick(k) * 2000
		for i, in := range c.Inputs {
			if i < 8 {
				chs = append(chs, vectors.Change{Time: tck, Input: in, Value: logic.FromBool(k%2 == 1)})
			}
		}
	}
	stim := &vectors.Stimulus{Changes: chs, End: circuit.Tick(cycles) * 2000}
	stim.Sort()
	w := &workload{c: c, stim: stim, until: core.Horizon(c, stim)}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	profile, err := core.PreSimulate(c, stim, w.until, logic.TwoValued)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E10",
		Title:  "pre-simulation workload weights vs structural weights (4 LPs, FM)",
		Claim:  "the simulation is run for a period of time and the evaluation frequency of each gate is measured ... it has proven successful when using random test vectors",
		Header: []string{"weights", "load-imbalance", "sync-speedup"},
	}
	for _, wt := range []struct {
		name    string
		weights partition.Weights
	}{{"uniform", nil}, {"pre-simulated", profile}} {
		p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Weights: wt.weights, Seed: 11})
		if err != nil {
			return nil, err
		}
		sp, _, err := speedupOf(w, base, core.Options{
			Engine: core.EngineSync, LPs: 4, Partition: partition.MethodFM,
			PartitionSeed: 11, Weights: wt.weights,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			wt.name, f2(p.Imbalance(profile)), f2(sp),
		})
	}
	t.Notes = append(t.Notes, "load-imbalance is judged under the measured activity weights in both rows")
	return t, nil
}

// E11Variance tests the stability observation: "one problem that is of
// concern with the optimistic asynchronous algorithms is inconsistency in
// performance ... seemingly small variations in circumstances can trigger
// dramatic swings ... The synchronous algorithm does not seem to be prone
// to this type of behavior."
//
// Each engine runs the identical circuit, stimulus, and partition several
// times. The synchronous and conservative engines perform exactly the same
// work every run (their counters are deterministic); Time Warp's rollback
// behaviour depends on runtime scheduling, so its modeled time moves from
// run to run — the instability the paper describes, isolated from every
// other variable.
func E11Variance(s Scale) (*Table, error) {
	n := 1000
	vecs := 15
	reps := 6
	if s == Full {
		n = 4000
		vecs = 30
		reps = 12
	}
	c, err := sizedCircuit(n, 41, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.5, 500)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E11",
		Title:  "speedup stability across repeated identical runs (8 LPs)",
		Claim:  "seemingly small variations in circumstances can trigger dramatic swings in [optimistic] performance results",
		Header: []string{"engine", "runs", "mean", "stddev", "cv", "min", "max", "rollback-range"},
	}
	for _, eng := range []core.Engine{core.EngineSync, core.EngineCMB, core.EngineTimeWarp} {
		var sps []float64
		minRB, maxRB := uint64(1<<62), uint64(0)
		for r := 0; r < reps; r++ {
			sp, rep, err := speedupOf(w, base, core.Options{
				Engine: eng, LPs: 8, Partition: partition.MethodRandom, PartitionSeed: 9,
			})
			if err != nil {
				return nil, err
			}
			sps = append(sps, sp)
			rb := rep.Metrics.Counters().Rollbacks
			if rb < minRB {
				minRB = rb
			}
			if rb > maxRB {
				maxRB = rb
			}
		}
		mean, sd, min, max := summarize(sps)
		cv := 0.0
		if mean > 0 {
			cv = sd / mean
		}
		t.Rows = append(t.Rows, []string{
			eng.String(), d(reps), f2(mean), f2(sd), f2(cv), f2(min), f2(max),
			fmt.Sprintf("%d..%d", minRB, maxRB),
		})
	}
	return t, nil
}

// summarize computes mean, standard deviation, min, and max.
func summarize(xs []float64) (mean, sd, min, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd, min, max
}

// E12Hybrid compares hierarchical synchronization with the flat engines at
// the same total processor count.
func E12Hybrid(s Scale) (*Table, error) {
	n := 2000
	vecs := 20
	if s == Full {
		n = 8000
		vecs = 40
	}
	c, err := sizedCircuit(n, 43, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.5, 43)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E12",
		Title:  "hybrid (4 clusters x 4 workers) vs flat engines at 16 processors",
		Claim:  "hierarchical synchronization ... appears especially attractive for naturally hierarchical execution platforms",
		Header: []string{"configuration", "processors", "speedup"},
	}
	add := func(name string, opts core.Options) error {
		sp, rep, err := speedupOf(w, base, opts)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, d(rep.Processors), f2(sp)})
		return nil
	}
	if err := add("sync-16", core.Options{Engine: core.EngineSync, LPs: 16, Partition: partition.MethodFM, PartitionSeed: 13}); err != nil {
		return nil, err
	}
	if err := add("timewarp-16", core.Options{Engine: core.EngineTimeWarp, LPs: 16, Partition: partition.MethodFM, PartitionSeed: 13}); err != nil {
		return nil, err
	}
	if err := add("timewarp-4", core.Options{Engine: core.EngineTimeWarp, LPs: 4, Partition: partition.MethodFM, PartitionSeed: 13}); err != nil {
		return nil, err
	}
	if err := add("hybrid-4x4", core.Options{Engine: core.EngineHybrid, LPs: 4, IntraWorkers: 4, Partition: partition.MethodFM, PartitionSeed: 13}); err != nil {
		return nil, err
	}
	return t, nil
}

// E13FaultParallel demonstrates data parallelism on fault simulation.
func E13FaultParallel(s Scale) (*Table, error) {
	bits := 4
	vecs := 15
	if s == Full {
		bits = 6
		vecs = 30
	}
	c, err := gen.ArrayMultiplier(bits, gen.Unit)
	if err != nil {
		return nil, err
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: vecs, Period: 60, Activity: 0.5, Seed: 47})
	if err != nil {
		return nil, err
	}
	until := core.Horizon(c, stim)
	faults := fault.Collapse(c, fault.Universe(c))
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("fault simulation of a %dx%d multiplier (%d collapsed faults)", bits, bits, len(faults)),
		Claim:  "data parallelism ... is quite effective for fault simulation, where a large number of independent input vectors need to be simulated",
		Header: []string{"workers", "coverage", "wall", "modeled-speedup"},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res, wall, err := timedFaultRun(c, stim, until, faults, workers)
		if err != nil {
			return nil, err
		}
		// Data-parallel modeled speedup: independent equal-cost faults
		// divided round-robin across workers.
		modeled := float64(len(faults)) / math.Ceil(float64(len(faults))/float64(workers))
		t.Rows = append(t.Rows, []string{
			d(workers), f2(res.Coverage), wall, f2(modeled),
		})
	}
	t.Notes = append(t.Notes, "wall time reflects the host core count; modeled speedup assumes independent equal-cost faults")
	return t, nil
}

// E14EventQueues compares the pending-event set structures under the
// sequential engine (the "event queue management" overhead of Section II).
func E14EventQueues(s Scale) (*Table, error) {
	n := 2000
	vecs := 25
	if s == Full {
		n = 8000
		vecs = 50
	}
	t := &Table{
		ID:     "E14",
		Title:  "pending-event set implementations (sequential engine)",
		Claim:  "algorithm parallelism ... event queue management [is one of the serial bottleneck steps]",
		Header: []string{"queue", "delays", "events", "wall", "events/ms"},
	}
	for _, delays := range []struct {
		name string
		spec gen.DelaySpec
	}{{"unit", gen.Unit}, {"fine(1..16)", gen.Fine(16, 53)}} {
		c, err := sizedCircuit(n, 53, delays.spec)
		if err != nil {
			return nil, err
		}
		w, err := randomWorkload(c, vecs, 40, 0.6, 53)
		if err != nil {
			return nil, err
		}
		for _, q := range []struct {
			name string
			impl int
		}{{"heap", 0}, {"calendar", 1}, {"wheel", 2}} {
			events, wall, rate, err := timedSeqRun(w, q.impl)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{q.name, delays.name, d(events), wall, f2(rate)})
		}
	}
	return t, nil
}

// timedSeqRun measures one sequential run with the given queue impl.
func timedSeqRun(w *workload, impl int) (uint64, string, float64, error) {
	start := nowf()
	res, err := seq.Run(w.c, w.stim, w.until, seq.Config{
		System: logic.TwoValued, Queue: eventqImpl(impl),
	})
	if err != nil {
		return 0, "", 0, err
	}
	el := nowf() - start
	events := res.Counters.EventsApplied + res.Counters.EventsScheduled
	rate := float64(events) / (el * 1000)
	return events, fmt.Sprintf("%.1fms", el*1000), rate, nil
}
