package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/vectors"
)

// nowf returns a monotonic wall-clock reading in seconds.
func nowf() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// eventqImpl maps the small integers used in tables to queue impls.
func eventqImpl(i int) eventq.Impl {
	switch i {
	case 1:
		return eventq.ImplCalendar
	case 2:
		return eventq.ImplWheel
	default:
		return eventq.ImplHeap
	}
}

// skewedWorkload builds stimulus in which the first quarter of the inputs
// toggle with probability 0.9 per vector and the rest with 0.02 — the
// hot-spot activity profile that makes structural load balancing fail.
func skewedWorkload(c *circuit.Circuit, vecs int, period circuit.Tick, seed int64) (*workload, error) {
	rng := rand.New(rand.NewSource(seed))
	stim := &vectors.Stimulus{End: circuit.Tick(vecs) * period}
	cur := map[circuit.GateID]logic.Value{}
	for _, in := range c.Inputs {
		v := logic.FromBool(rng.Intn(2) == 1)
		cur[in] = v
		stim.Changes = append(stim.Changes, vectors.Change{Time: 0, Input: in, Value: v})
	}
	hot := len(c.Inputs) / 4
	if hot < 1 {
		hot = 1
	}
	for k := 1; k <= vecs; k++ {
		t := circuit.Tick(k) * period
		for i, in := range c.Inputs {
			p := 0.02
			if i < hot {
				p = 0.9
			}
			if rng.Float64() < p {
				nv := logic.Not(cur[in])
				cur[in] = nv
				stim.Changes = append(stim.Changes, vectors.Change{Time: t, Input: in, Value: nv})
			}
		}
	}
	stim.Sort()
	return &workload{c: c, stim: stim, until: core.Horizon(c, stim)}, nil
}

// timedFaultRun runs a fault campaign and formats its wall time.
func timedFaultRun(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, faults []fault.Fault, workers int) (*fault.Result, string, error) {
	start := time.Now()
	res, err := fault.Run(c, stim, until, faults, fault.Config{Workers: workers})
	if err != nil {
		return nil, "", err
	}
	return res, fmt.Sprintf("%.1fms", float64(time.Since(start).Microseconds())/1000), nil
}
