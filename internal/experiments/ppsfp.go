package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/vectors"
)

// E17WordParallel measures the word-level form of data parallelism: PPSFP
// fault grading (64 patterns per machine word, fault dropping) against the
// event-driven serial-fault grader on the same circuit, patterns, and
// fault list. Where E13 fans faults across goroutines, this experiment
// fans patterns across bit lanes — the two compose.
func E17WordParallel(s Scale) (*Table, error) {
	bits := 5
	npat := 96
	if s == Full {
		bits = 8
		npat = 192
	}
	c, err := gen.ArrayMultiplier(bits, gen.Unit)
	if err != nil {
		return nil, err
	}
	faults := fault.Collapse(c, fault.Universe(c))
	rng := rand.New(rand.NewSource(19))
	patterns := make([][]bool, npat)
	for k := range patterns {
		patterns[k] = make([]bool, len(c.Inputs))
		for i := range patterns[k] {
			patterns[k][i] = rng.Intn(2) == 1
		}
	}

	t := &Table{
		ID:     "E17",
		Title:  fmt.Sprintf("PPSFP vs event-driven fault grading (%dx%d multiplier, %d faults, %d patterns)", bits, bits, len(faults), npat),
		Claim:  "data parallelism uses different processors to simulate the circuit for distinct input vectors ... quite effective for fault simulation",
		Header: []string{"grader", "coverage", "wall", "speedup"},
	}

	// Event-driven serial-fault baseline on the identical patterns.
	stim := &vectors.Stimulus{End: circuit.Tick(npat-1) * 200}
	for k, pat := range patterns {
		tm := circuit.Tick(k) * 200
		for i, in := range c.Inputs {
			stim.Changes = append(stim.Changes, vectors.Change{Time: tm, Input: in, Value: logic.FromBool(pat[i])})
		}
	}
	stim.Sort()
	start := time.Now()
	ev, err := fault.Run(c, stim, core.Horizon(c, stim), faults, fault.Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	evWall := time.Since(start)
	t.Rows = append(t.Rows, []string{"event-driven", f2(ev.Coverage),
		fmt.Sprintf("%.0fms", evWall.Seconds()*1000), "1.00"})

	for _, workers := range []int{1, 4} {
		start = time.Now()
		pp, err := fault.GradeBitParallel(c, patterns, faults, workers)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("ppsfp-%dw", workers), f2(pp.Coverage),
			fmt.Sprintf("%.1fms", wall.Seconds()*1000),
			f2(evWall.Seconds() / wall.Seconds()),
		})
		if pp.Detected != ev.Detected {
			return nil, fmt.Errorf("E17: graders disagree: %d vs %d", pp.Detected, ev.Detected)
		}
	}
	t.Notes = append(t.Notes,
		"wall-clock speedups (not modeled): bit lanes are real parallelism on any host",
		"both graders verified to detect the identical fault set")
	return t, nil
}
