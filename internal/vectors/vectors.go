// Package vectors generates test stimulus for simulation runs.
//
// The paper notes that the ISCAS benchmark circuits ship without test
// vectors and "are typically simulated using random vectors"; this package
// provides that random-vector methodology with a controllable activity
// level (the probability that an input toggles at each vector boundary),
// plus clocked sequences for sequential circuits and deterministic walking
// patterns. Activity is the knob behind the oblivious-versus-event-driven
// trade-off the paper describes, so it is a first-class parameter here.
package vectors

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Change is one primary-input transition.
type Change struct {
	Time  circuit.Tick
	Input circuit.GateID
	Value logic.Value
}

// Stimulus is a complete input schedule for one simulation run. Changes are
// sorted by (Time, Input) and include the initial assignment at time zero.
type Stimulus struct {
	Changes []Change
	// End is the stimulus horizon: the time by which all changes have been
	// applied. Simulations typically run until End plus a settling margin.
	End circuit.Tick
}

// Sort establishes the canonical (Time, Input) order on hand-built
// stimulus; the generators in this package already emit sorted changes.
func (s *Stimulus) Sort() { sortChanges(s.Changes) }

// sortChanges establishes the canonical (Time, Input) order.
func sortChanges(cs []Change) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Time != cs[j].Time {
			return cs[i].Time < cs[j].Time
		}
		return cs[i].Input < cs[j].Input
	})
}

// Validate checks that the stimulus only drives primary inputs of c and is
// properly ordered.
func (s *Stimulus) Validate(c *circuit.Circuit) error {
	isInput := make(map[circuit.GateID]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		isInput[in] = true
	}
	for i, ch := range s.Changes {
		if !isInput[ch.Input] {
			return fmt.Errorf("vectors: change %d drives gate %d which is not a primary input", i, ch.Input)
		}
		if !ch.Value.Valid() {
			return fmt.Errorf("vectors: change %d has invalid value", i)
		}
		if i > 0 {
			prev := s.Changes[i-1]
			if ch.Time < prev.Time || (ch.Time == prev.Time && ch.Input < prev.Input) {
				return fmt.Errorf("vectors: changes out of order at index %d", i)
			}
			if ch.Time == prev.Time && ch.Input == prev.Input {
				return fmt.Errorf("vectors: duplicate change for input %d at time %d", ch.Input, ch.Time)
			}
		}
		if ch.Time > s.End {
			return fmt.Errorf("vectors: change %d at time %d beyond End %d", i, ch.Time, s.End)
		}
	}
	return nil
}

// NumVectors counts the distinct change times (vector boundaries).
func (s *Stimulus) NumVectors() int {
	n := 0
	var last circuit.Tick
	for i, ch := range s.Changes {
		if i == 0 || ch.Time != last {
			n++
			last = ch.Time
		}
	}
	return n
}

// RandomConfig parameterizes Random stimulus generation.
type RandomConfig struct {
	// Vectors is the number of vector boundaries after the initial
	// assignment.
	Vectors int
	// Period is the spacing between vector boundaries in ticks; it is the
	// paper's "timing granularity of the stimulus" knob. Must be >= 1.
	Period circuit.Tick
	// Activity is the probability in [0,1] that each input toggles at each
	// boundary. 1.0 re-randomizes every input every vector; small values
	// model mostly-idle circuits.
	Activity float64
	// System constrains generated values to the given value system's
	// driven levels (always 0/1; the system only matters for how engines
	// initialize undriven state).
	Seed int64
}

// Random generates random stimulus for the inputs of c.
//
// At time 0 every input receives a random 0/1 assignment; at each
// subsequent boundary each input toggles with probability Activity.
func Random(c *circuit.Circuit, cfg RandomConfig) (*Stimulus, error) {
	if cfg.Period == 0 {
		return nil, fmt.Errorf("vectors: Random: Period must be >= 1")
	}
	if cfg.Vectors < 0 {
		return nil, fmt.Errorf("vectors: Random: negative vector count")
	}
	if cfg.Activity < 0 || cfg.Activity > 1 {
		return nil, fmt.Errorf("vectors: Random: Activity %f outside [0,1]", cfg.Activity)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stimulus{End: circuit.Tick(cfg.Vectors) * cfg.Period}
	cur := make(map[circuit.GateID]logic.Value, len(c.Inputs))
	for _, in := range c.Inputs {
		v := logic.FromBool(rng.Intn(2) == 1)
		cur[in] = v
		s.Changes = append(s.Changes, Change{Time: 0, Input: in, Value: v})
	}
	for k := 1; k <= cfg.Vectors; k++ {
		t := circuit.Tick(k) * cfg.Period
		for _, in := range c.Inputs {
			if rng.Float64() < cfg.Activity {
				nv := logic.Not(cur[in])
				cur[in] = nv
				s.Changes = append(s.Changes, Change{Time: t, Input: in, Value: nv})
			}
		}
	}
	sortChanges(s.Changes)
	return s, nil
}

// ClockedConfig parameterizes Clocked stimulus generation.
type ClockedConfig struct {
	// Clock names the clock input gate.
	Clock string
	// Cycles is the number of full clock cycles to generate.
	Cycles int
	// HalfPeriod is the half-period of the clock in ticks (>= 1).
	HalfPeriod circuit.Tick
	// Activity is the per-cycle toggle probability of each non-clock input;
	// data inputs change just after the falling edge, safely away from the
	// sampling (rising) edge.
	Activity float64
	Seed     int64
}

// Clocked generates a free-running clock on the named input plus random
// data on the remaining inputs, the standard way to drive the sequential
// (ISCAS-89-style) benchmarks.
func Clocked(c *circuit.Circuit, cfg ClockedConfig) (*Stimulus, error) {
	if cfg.HalfPeriod == 0 {
		return nil, fmt.Errorf("vectors: Clocked: HalfPeriod must be >= 1")
	}
	if cfg.Activity < 0 || cfg.Activity > 1 {
		return nil, fmt.Errorf("vectors: Clocked: Activity %f outside [0,1]", cfg.Activity)
	}
	clk, ok := c.ByName(cfg.Clock)
	if !ok {
		return nil, fmt.Errorf("vectors: Clocked: no input named %q", cfg.Clock)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stimulus{End: circuit.Tick(cfg.Cycles) * 2 * cfg.HalfPeriod}
	cur := make(map[circuit.GateID]logic.Value, len(c.Inputs))
	isClk := false
	for _, in := range c.Inputs {
		if in == clk {
			isClk = true
			cur[in] = logic.Zero
			s.Changes = append(s.Changes, Change{Time: 0, Input: in, Value: logic.Zero})
			continue
		}
		v := logic.FromBool(rng.Intn(2) == 1)
		cur[in] = v
		s.Changes = append(s.Changes, Change{Time: 0, Input: in, Value: v})
	}
	if !isClk {
		return nil, fmt.Errorf("vectors: Clocked: gate %q is not a primary input", cfg.Clock)
	}
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		base := circuit.Tick(cycle) * 2 * cfg.HalfPeriod
		rise := base + cfg.HalfPeriod
		fall := base + 2*cfg.HalfPeriod
		s.Changes = append(s.Changes,
			Change{Time: rise, Input: clk, Value: logic.One},
			Change{Time: fall, Input: clk, Value: logic.Zero},
		)
		if fall >= s.End {
			continue
		}
		// New data lands right after the falling edge.
		for _, in := range c.Inputs {
			if in == clk {
				continue
			}
			if rng.Float64() < cfg.Activity {
				nv := logic.Not(cur[in])
				cur[in] = nv
				s.Changes = append(s.Changes, Change{Time: fall, Input: in, Value: nv})
			}
		}
	}
	sortChanges(s.Changes)
	return s, nil
}

// WalkingOnes generates the classic walking-ones pattern: all inputs start
// at 0 and a single 1 marches across the inputs, one position per period.
// It produces low, perfectly regular activity, useful as a partitioning and
// debug workload.
func WalkingOnes(c *circuit.Circuit, period circuit.Tick) (*Stimulus, error) {
	if period == 0 {
		return nil, fmt.Errorf("vectors: WalkingOnes: period must be >= 1")
	}
	n := len(c.Inputs)
	s := &Stimulus{End: circuit.Tick(n+1) * period}
	for _, in := range c.Inputs {
		s.Changes = append(s.Changes, Change{Time: 0, Input: in, Value: logic.Zero})
	}
	for i, in := range c.Inputs {
		on := circuit.Tick(i+1) * period
		s.Changes = append(s.Changes, Change{Time: on, Input: in, Value: logic.One})
		if off := on + period; off <= s.End {
			s.Changes = append(s.Changes, Change{Time: off, Input: in, Value: logic.Zero})
		}
	}
	sortChanges(s.Changes)
	// The walking bit turning off coincides with the next bit turning on;
	// dedupe is unnecessary because they target different inputs, but a
	// final input's off event may fall exactly at End, which is fine.
	return s, nil
}

// Exhaustive enumerates all 2^n input combinations in Gray-code order (one
// input change per step), for circuits with few inputs. It errors beyond
// maxInputs to avoid accidental explosion.
func Exhaustive(c *circuit.Circuit, period circuit.Tick, maxInputs int) (*Stimulus, error) {
	if period == 0 {
		return nil, fmt.Errorf("vectors: Exhaustive: period must be >= 1")
	}
	n := len(c.Inputs)
	if n > maxInputs {
		return nil, fmt.Errorf("vectors: Exhaustive: %d inputs exceeds limit %d", n, maxInputs)
	}
	total := 1 << n
	s := &Stimulus{End: circuit.Tick(total) * period}
	for _, in := range c.Inputs {
		s.Changes = append(s.Changes, Change{Time: 0, Input: in, Value: logic.Zero})
	}
	for k := 1; k < total; k++ {
		// Gray code: bit that flips between k-1 and k.
		bit := 0
		for v := (k ^ (k >> 1)) ^ ((k - 1) ^ ((k - 1) >> 1)); v > 1; v >>= 1 {
			bit++
		}
		in := c.Inputs[bit]
		t := circuit.Tick(k) * period
		// Value = bit of gray(k).
		g := k ^ (k >> 1)
		v := logic.FromBool(g&(1<<bit) != 0)
		s.Changes = append(s.Changes, Change{Time: t, Input: in, Value: v})
	}
	sortChanges(s.Changes)
	return s, nil
}
