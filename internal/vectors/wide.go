package vectors

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// WideChange is one primary-input transition of a wide (64-lane) run: at
// Time the input's packed word becomes Word. The word is complete — lanes
// whose scalar stimulus does not change at Time carry their prior value —
// so applying wide changes in order reproduces every lane's scalar input
// waveform exactly.
type WideChange struct {
	Time  circuit.Tick
	Input circuit.GateID
	Word  logic.Word
}

// WideStimulus is a complete 64-lane input schedule: Lanes independent
// scalar stimuli packed into word-valued changes sorted by (Time, Input).
type WideStimulus struct {
	Changes []WideChange
	// End is the horizon: the maximum End of the packed lanes.
	End circuit.Tick
	// Lanes is the number of meaningful lanes; higher lanes hold their
	// initial value for the whole run.
	Lanes int
}

// NumVectors counts the distinct change times (vector boundaries) of the
// wide schedule. The total vector count of a wide run is NumVectors*Lanes.
func (s *WideStimulus) NumVectors() int {
	n := 0
	var last circuit.Tick
	for i, ch := range s.Changes {
		if i == 0 || ch.Time != last {
			n++
			last = ch.Time
		}
	}
	return n
}

// Pack merges up to logic.Lanes scalar stimuli into one wide stimulus,
// assigning stims[k] to lane k. Values are projected through sys when
// packed, and lanes not yet driven at a merge point hold the projected
// initial input value — exactly the value a scalar engine running lane k
// under sys would see, which makes wide runs lane-exact by construction.
func Pack(c *circuit.Circuit, stims []*Stimulus, sys logic.System) (*WideStimulus, error) {
	if len(stims) == 0 {
		return nil, fmt.Errorf("vectors: Pack: no stimuli")
	}
	if len(stims) > logic.Lanes {
		return nil, fmt.Errorf("vectors: Pack: %d stimuli exceed %d lanes", len(stims), logic.Lanes)
	}
	out := &WideStimulus{Lanes: len(stims)}
	for k, s := range stims {
		if err := s.Validate(c); err != nil {
			return nil, fmt.Errorf("vectors: Pack: lane %d: %w", k, err)
		}
		if s.End > out.End {
			out.End = s.End
		}
	}
	// Group each lane's (sorted) changes by input once, then merge the
	// per-input lane streams in time order, maintaining the packed word.
	grouped := make(map[circuit.GateID][][]Change, len(c.Inputs))
	for _, in := range c.Inputs {
		grouped[in] = make([][]Change, len(stims))
	}
	for k, s := range stims {
		for _, ch := range s.Changes {
			grouped[ch.Input][k] = append(grouped[ch.Input][k], ch)
		}
	}
	init := logic.Splat(sys.Project(circuit.InitialValue(circuit.Input)))
	for _, in := range c.Inputs {
		perLane := grouped[in]
		cur := init
		idx := make([]int, len(stims))
		for {
			// Next merge time: minimum pending change time across lanes.
			t := circuit.Tick(0)
			found := false
			for k := range stims {
				if idx[k] < len(perLane[k]) {
					if ct := perLane[k][idx[k]].Time; !found || ct < t {
						t, found = ct, true
					}
				}
			}
			if !found {
				break
			}
			next := cur
			for k := range stims {
				for idx[k] < len(perLane[k]) && perLane[k][idx[k]].Time == t {
					next = next.Set(k, sys.Project(perLane[k][idx[k]].Value))
					idx[k]++
				}
			}
			if next != cur || t == 0 {
				cur = next
				out.Changes = append(out.Changes, WideChange{Time: t, Input: in, Word: cur})
			}
		}
	}
	sortWideChanges(out.Changes)
	return out, nil
}

// sortWideChanges establishes the canonical (Time, Input) order.
func sortWideChanges(cs []WideChange) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Time != cs[j].Time {
			return cs[i].Time < cs[j].Time
		}
		return cs[i].Input < cs[j].Input
	})
}

// RandomBatch generates lanes independent Random stimuli (lane k seeded
// with cfg.Seed+k) and packs them. It returns both the wide stimulus and
// the scalar per-lane stimuli, so conformance suites can replay each lane
// on a scalar engine.
func RandomBatch(c *circuit.Circuit, cfg RandomConfig, lanes int, sys logic.System) (*WideStimulus, []*Stimulus, error) {
	if lanes < 1 || lanes > logic.Lanes {
		return nil, nil, fmt.Errorf("vectors: RandomBatch: lane count %d outside [1,%d]", lanes, logic.Lanes)
	}
	stims := make([]*Stimulus, lanes)
	for k := range stims {
		lcfg := cfg
		lcfg.Seed = cfg.Seed + int64(k)
		s, err := Random(c, lcfg)
		if err != nil {
			return nil, nil, err
		}
		stims[k] = s
	}
	ws, err := Pack(c, stims, sys)
	if err != nil {
		return nil, nil, err
	}
	return ws, stims, nil
}

// ClockedBatch generates lanes independent Clocked stimuli (lane k seeded
// with cfg.Seed+k, sharing the clock waveform) and packs them.
func ClockedBatch(c *circuit.Circuit, cfg ClockedConfig, lanes int, sys logic.System) (*WideStimulus, []*Stimulus, error) {
	if lanes < 1 || lanes > logic.Lanes {
		return nil, nil, fmt.Errorf("vectors: ClockedBatch: lane count %d outside [1,%d]", lanes, logic.Lanes)
	}
	stims := make([]*Stimulus, lanes)
	for k := range stims {
		lcfg := cfg
		lcfg.Seed = cfg.Seed + int64(k)
		s, err := Clocked(c, lcfg)
		if err != nil {
			return nil, nil, err
		}
		stims[k] = s
	}
	ws, err := Pack(c, stims, sys)
	if err != nil {
		return nil, nil, err
	}
	return ws, stims, nil
}

// Splat packs the same scalar stimulus into every one of lanes lanes, the
// degenerate batch used to cross-check wide engines against scalar runs.
func Splat(c *circuit.Circuit, s *Stimulus, lanes int, sys logic.System) (*WideStimulus, error) {
	stims := make([]*Stimulus, lanes)
	for k := range stims {
		stims[k] = s
	}
	return Pack(c, stims, sys)
}
