package vectors

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
)

func buildSmall(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := gen.RippleAdder(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildClocked(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := gen.Counter(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRandomBasics(t *testing.T) {
	c := buildSmall(t)
	s, err := Random(c, RandomConfig{Vectors: 10, Period: 5, Activity: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	if s.End != 50 {
		t.Fatalf("End = %d, want 50", s.End)
	}
	// Initial assignment covers every input at time 0.
	got := map[circuit.GateID]bool{}
	for _, ch := range s.Changes {
		if ch.Time == 0 {
			got[ch.Input] = true
		}
	}
	if len(got) != len(c.Inputs) {
		t.Fatalf("initial vector drives %d of %d inputs", len(got), len(c.Inputs))
	}
}

func TestRandomActivityScales(t *testing.T) {
	c := buildSmall(t)
	lo, err := Random(c, RandomConfig{Vectors: 200, Period: 2, Activity: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Random(c, RandomConfig{Vectors: 200, Period: 2, Activity: 0.95, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hi.Changes) <= 2*len(lo.Changes) {
		t.Fatalf("activity knob ineffective: lo=%d hi=%d changes", len(lo.Changes), len(hi.Changes))
	}
}

func TestRandomActivityOne(t *testing.T) {
	c := buildSmall(t)
	s, err := Random(c, RandomConfig{Vectors: 5, Period: 3, Activity: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Every input toggles every vector: (5+1) * inputs changes.
	want := 6 * len(c.Inputs)
	if len(s.Changes) != want {
		t.Fatalf("changes = %d, want %d", len(s.Changes), want)
	}
	// Consecutive changes per input alternate values.
	last := map[circuit.GateID]logic.Value{}
	for _, ch := range s.Changes {
		if prev, ok := last[ch.Input]; ok && prev == ch.Value {
			t.Fatalf("input %d did not toggle at %d", ch.Input, ch.Time)
		}
		last[ch.Input] = ch.Value
	}
}

func TestRandomDeterminism(t *testing.T) {
	c := buildSmall(t)
	cfg := RandomConfig{Vectors: 20, Period: 7, Activity: 0.4, Seed: 123}
	s1, _ := Random(c, cfg)
	s2, _ := Random(c, cfg)
	if len(s1.Changes) != len(s2.Changes) {
		t.Fatal("same seed, different stimulus")
	}
	for i := range s1.Changes {
		if s1.Changes[i] != s2.Changes[i] {
			t.Fatal("same seed, different stimulus")
		}
	}
}

func TestRandomErrors(t *testing.T) {
	c := buildSmall(t)
	if _, err := Random(c, RandomConfig{Vectors: 1, Period: 0}); err == nil {
		t.Error("Period 0 accepted")
	}
	if _, err := Random(c, RandomConfig{Vectors: -1, Period: 1}); err == nil {
		t.Error("negative vectors accepted")
	}
	if _, err := Random(c, RandomConfig{Vectors: 1, Period: 1, Activity: 1.5}); err == nil {
		t.Error("activity > 1 accepted")
	}
}

func TestClockedShape(t *testing.T) {
	c := buildClocked(t)
	s, err := Clocked(c, ClockedConfig{Clock: "clk", Cycles: 4, HalfPeriod: 10, Activity: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	clk, _ := c.ByName("clk")
	// Clock edges: rises at 10, 30, 50, 70; falls at 20, 40, 60, 80.
	var clkChanges []Change
	for _, ch := range s.Changes {
		if ch.Input == clk {
			clkChanges = append(clkChanges, ch)
		}
	}
	if len(clkChanges) != 9 { // initial 0 + 8 edges
		t.Fatalf("clock changes = %d, want 9", len(clkChanges))
	}
	wantTimes := []circuit.Tick{0, 10, 20, 30, 40, 50, 60, 70, 80}
	for i, ch := range clkChanges {
		if ch.Time != wantTimes[i] {
			t.Fatalf("clock edge %d at %d, want %d", i, ch.Time, wantTimes[i])
		}
		wantV := logic.FromBool(i%2 == 1)
		if ch.Value != wantV {
			t.Fatalf("clock edge %d = %v, want %v", i, ch.Value, wantV)
		}
	}
	if s.End != 80 {
		t.Fatalf("End = %d, want 80", s.End)
	}
}

func TestClockedErrors(t *testing.T) {
	c := buildClocked(t)
	if _, err := Clocked(c, ClockedConfig{Clock: "nope", Cycles: 1, HalfPeriod: 1}); err == nil {
		t.Error("unknown clock accepted")
	}
	if _, err := Clocked(c, ClockedConfig{Clock: "clk", Cycles: 1, HalfPeriod: 0}); err == nil {
		t.Error("HalfPeriod 0 accepted")
	}
	if _, err := Clocked(c, ClockedConfig{Clock: "clk", Cycles: 1, HalfPeriod: 1, Activity: -0.5}); err == nil {
		t.Error("negative activity accepted")
	}
	// A non-input gate name must be rejected.
	cc, err := gen.Counter(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Clocked(cc, ClockedConfig{Clock: "q0", Cycles: 1, HalfPeriod: 1}); err == nil {
		t.Error("non-input clock accepted")
	}
}

func TestWalkingOnes(t *testing.T) {
	c := buildSmall(t)
	s, err := WalkingOnes(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	// At each boundary k (1-based), input k-1 turns on.
	onTimes := map[circuit.GateID]circuit.Tick{}
	for _, ch := range s.Changes {
		if ch.Value == logic.One {
			onTimes[ch.Input] = ch.Time
		}
	}
	for i, in := range c.Inputs {
		want := circuit.Tick(i+1) * 10
		if onTimes[in] != want {
			t.Fatalf("input %d turns on at %d, want %d", i, onTimes[in], want)
		}
	}
	if _, err := WalkingOnes(c, 0); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestExhaustiveGray(t *testing.T) {
	c, err := gen.RippleAdder(1, gen.Unit) // 3 inputs: a0, b0, cin
	if err != nil {
		t.Fatal(err)
	}
	s, err := Exhaustive(c, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	// 2^3 = 8 combinations; after t=0, exactly one change per boundary.
	count := map[circuit.Tick]int{}
	for _, ch := range s.Changes {
		count[ch.Time]++
	}
	if count[0] != 3 {
		t.Fatalf("initial changes = %d, want 3", count[0])
	}
	for k := 1; k < 8; k++ {
		if count[circuit.Tick(k)*5] != 1 {
			t.Fatalf("boundary %d has %d changes, want 1 (gray code)", k, count[circuit.Tick(k)*5])
		}
	}
	if _, err := Exhaustive(c, 5, 2); err == nil {
		t.Error("input limit not enforced")
	}
	if _, err := Exhaustive(c, 0, 8); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestValidateCatchesBadStimulus(t *testing.T) {
	c := buildSmall(t)
	in0 := c.Inputs[0]
	notInput := c.Outputs[0]
	bad := []Stimulus{
		{Changes: []Change{{0, notInput, logic.One}}, End: 10},
		{Changes: []Change{{5, in0, logic.One}, {3, in0, logic.Zero}}, End: 10},
		{Changes: []Change{{3, in0, logic.One}, {3, in0, logic.Zero}}, End: 10},
		{Changes: []Change{{3, in0, logic.Value(99)}}, End: 10},
		{Changes: []Change{{30, in0, logic.One}}, End: 10},
	}
	for i := range bad {
		if err := bad[i].Validate(c); err == nil {
			t.Errorf("bad stimulus %d accepted", i)
		}
	}
}

func TestNumVectors(t *testing.T) {
	c := buildSmall(t)
	s, err := Random(c, RandomConfig{Vectors: 10, Period: 5, Activity: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumVectors(); got != 11 {
		t.Fatalf("NumVectors = %d, want 11", got)
	}
	empty := &Stimulus{}
	if empty.NumVectors() != 0 {
		t.Fatal("empty stimulus has vectors")
	}
}
