// Package stats converts the per-logical-process work counters of package
// metrics into modeled execution times.
//
// The paper's Figure 1 reports wall-clock speedups measured on 1990s
// multiprocessors (BBN GP1000, iPSC, workstation networks). This
// reproduction runs on whatever host it is given — possibly a single core —
// so raw wall-clock cannot show parallel speedup. Instead, every engine
// counts the work each LP performs (evaluations, queue operations,
// cross-LP messages, null messages, rollbacks, state saving, barriers) in
// the unified metrics registry, and a cost model prices those counters
// into a modeled parallel runtime. This is the performance-prediction
// methodology of the synchronous-simulation literature the paper cites
// (Noble et al.): the absolute numbers are model-dependent, but the
// relative shape — which algorithm wins, where the crossovers fall — is
// what the experiments reproduce.
package stats

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
)

// CostModel prices LP work counters in abstract nanoseconds. The defaults
// are loosely calibrated to a 1990s-class multiprocessor node: evaluation
// and queue costs in the tens of nanoseconds, message costs an order of
// magnitude higher, barriers higher still and growing with the processor
// count.
type CostModel struct {
	// EvalCost is the cost of one gate evaluation.
	EvalCost float64
	// EventCost is the cost of one pending-event-set operation.
	EventCost float64
	// MsgCost is the cost of sending or receiving one cross-LP message.
	MsgCost float64
	// NullCost is the cost of one null message (send or receive).
	NullCost float64
	// RollbackCost is the fixed cost of one rollback episode.
	RollbackCost float64
	// UndoCost is the per-undone-event cost of restoring state.
	UndoCost float64
	// AntiCost is the cost of one anti-message.
	AntiCost float64
	// StateSaveCost is the per-saved-word cost of state saving.
	StateSaveCost float64
	// BarrierBase and BarrierPerLevel price one barrier: Base +
	// PerLevel*ceil(log2 P), the usual tree-barrier scaling; the paper's
	// observation that barrier time "grows with processor population" is
	// this term.
	BarrierBase     float64
	BarrierPerLevel float64
	// GVTCost prices one global-virtual-time computation round, scaled the
	// same way as a barrier.
	GVTCost float64
	// BlockCost prices one blocked-wait episode (see
	// metrics.LPCounters.Blocks).
	BlockCost float64
}

// DefaultCostModel returns the calibration used by the experiments: a
// gate evaluation (including its share of queue handling) in the couple
// hundred nanosecond range of 1990s processors, messages roughly 2x an
// evaluation (shared-memory notification on a multiprocessor bus), and
// barriers several evaluations plus a per-level tree term.
func DefaultCostModel() CostModel {
	return CostModel{
		EvalCost:        250,
		EventCost:       100,
		MsgCost:         500,
		NullCost:        250,
		RollbackCost:    400,
		UndoCost:        100,
		AntiCost:        500,
		StateSaveCost:   25,
		BarrierBase:     1000,
		BarrierPerLevel: 400,
		GVTCost:         1500,
		BlockCost:       1200,
	}
}

// Busy prices the pure computation an LP performed (no barriers/GVT, which
// are global and added by the engine-specific run summaries).
func (m CostModel) Busy(s metrics.LPCounters) float64 {
	return m.EvalCost*float64(s.Evaluations) +
		m.EventCost*float64(s.EventsApplied+s.EventsScheduled) +
		m.MsgCost*float64(s.MessagesSent+s.MessagesRecv) +
		m.NullCost*float64(s.NullsSent+s.NullsRecv) +
		m.RollbackCost*float64(s.Rollbacks) +
		m.UndoCost*float64(s.EventsRolledBack) +
		m.AntiCost*float64(s.AntiMessagesSent+s.AntiMessagesRecv) +
		m.StateSaveCost*float64(s.StateSavedWords) +
		m.BlockCost*float64(s.Blocks)
}

// Barrier prices one barrier among p processors.
func (m CostModel) Barrier(p int) float64 {
	return m.BarrierBase + m.BarrierPerLevel*ceilLog2(p)
}

// GVT prices one GVT round among p processors.
func (m CostModel) GVT(p int) float64 {
	return m.GVTCost * (1 + ceilLog2(p))
}

func ceilLog2(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// RunStats aggregates one run: a snapshot of the metrics registry in the
// form the cost model prices.
type RunStats struct {
	LPs []metrics.LPCounters
	// Barriers counts global barrier episodes (synchronous engine).
	Barriers uint64
	// GVTRounds counts GVT computations (optimistic engine).
	GVTRounds uint64
	// ModeledCritical is Σ_steps max_LP(step work): the engine-computed
	// critical path of a barrier-synchronized run. Engines that do not
	// track per-step maxima leave it zero and the modeled time falls back
	// to the busiest-LP bound.
	ModeledCritical float64
	// Wall is the measured host wall-clock time (reported, not used for
	// speedup).
	Wall time.Duration
}

// Collect snapshots a metrics sink into RunStats and stamps the wall time
// into the sink's globals. Engines call it once, after their worker
// goroutines have joined.
func Collect(m metrics.Sink, wall time.Duration) RunStats {
	g := m.Globals()
	g.WallNs = wall.Nanoseconds()
	rs := RunStats{
		Barriers:        g.Barriers,
		GVTRounds:       g.GVTRounds,
		ModeledCritical: g.ModeledCriticalNs,
		Wall:            wall,
	}
	for i := 0; i < m.NumLPs(); i++ {
		rs.LPs = append(rs.LPs, m.LP(i).LPCounters)
	}
	return rs
}

// Total sums the per-LP counters.
func (r *RunStats) Total() metrics.LPCounters {
	var t metrics.LPCounters
	for _, lp := range r.LPs {
		t.Add(lp)
	}
	return t
}

// ModeledTime prices the run on p modeled processors: the larger of the
// engine's critical-path estimate and the busiest LP's work, plus global
// synchronization costs.
func (r *RunStats) ModeledTime(m CostModel) float64 {
	var busiest float64
	for _, lp := range r.LPs {
		if b := m.Busy(lp); b > busiest {
			busiest = b
		}
	}
	t := busiest
	if r.ModeledCritical > t {
		t = r.ModeledCritical
	}
	p := len(r.LPs)
	t += float64(r.Barriers) * m.Barrier(p)
	t += float64(r.GVTRounds) * m.GVT(p)
	return t
}

// SequentialTime prices the same workload executed on one processor with
// no parallel overheads: evaluations and queue operations only. Pass the
// counters of a sequential reference run.
func SequentialTime(m CostModel, evaluations, eventsApplied, eventsScheduled uint64) float64 {
	return m.EvalCost*float64(evaluations) +
		m.EventCost*float64(eventsApplied+eventsScheduled)
}

// Speedup divides the sequential model time by the parallel model time.
func Speedup(seqTime, parTime float64) float64 {
	if parTime <= 0 {
		return 0
	}
	return seqTime / parTime
}

// Summary renders the run's headline numbers for CLI output.
func (r *RunStats) Summary(m CostModel) string {
	t := r.Total()
	return fmt.Sprintf(
		"LPs=%d evals=%d events=%d msgs=%d nulls=%d rollbacks=%d undone=%d antis=%d barriers=%d gvt=%d modeled=%.0fns wall=%v",
		len(r.LPs), t.Evaluations, t.EventsApplied, t.MessagesSent, t.NullsSent,
		t.Rollbacks, t.EventsRolledBack, t.AntiMessagesSent, r.Barriers, r.GVTRounds,
		r.ModeledTime(m), r.Wall)
}
