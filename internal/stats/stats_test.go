package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAccumulates(t *testing.T) {
	a := LPStats{Evaluations: 1, MessagesSent: 2, Rollbacks: 3, Blocks: 4}
	b := LPStats{Evaluations: 10, MessagesSent: 20, Rollbacks: 30, Blocks: 40}
	a.Add(b)
	if a.Evaluations != 11 || a.MessagesSent != 22 || a.Rollbacks != 33 || a.Blocks != 44 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestBusyMonotonicInEveryCounter(t *testing.T) {
	m := DefaultCostModel()
	base := LPStats{Evaluations: 10, EventsApplied: 10, MessagesSent: 2}
	b0 := m.Busy(base)
	inc := []func(*LPStats){
		func(s *LPStats) { s.Evaluations++ },
		func(s *LPStats) { s.EventsApplied++ },
		func(s *LPStats) { s.EventsScheduled++ },
		func(s *LPStats) { s.MessagesSent++ },
		func(s *LPStats) { s.MessagesRecv++ },
		func(s *LPStats) { s.NullsSent++ },
		func(s *LPStats) { s.NullsRecv++ },
		func(s *LPStats) { s.Rollbacks++ },
		func(s *LPStats) { s.EventsRolledBack++ },
		func(s *LPStats) { s.AntiMessagesSent++ },
		func(s *LPStats) { s.AntiMessagesRecv++ },
		func(s *LPStats) { s.StateSavedWords++ },
		func(s *LPStats) { s.Blocks++ },
	}
	for i, f := range inc {
		s := base
		f(&s)
		if m.Busy(s) <= b0 {
			t.Errorf("counter %d does not increase Busy", i)
		}
	}
}

func TestBarrierGrowsWithProcessors(t *testing.T) {
	m := DefaultCostModel()
	if m.Barrier(1) >= m.Barrier(2) || m.Barrier(8) >= m.Barrier(32) {
		t.Fatal("barrier cost not growing with processor count")
	}
	if m.GVT(1) >= m.GVT(16) {
		t.Fatal("GVT cost not growing")
	}
}

func TestModeledTimeUsesBusiestLP(t *testing.T) {
	m := DefaultCostModel()
	r := RunStats{LPs: []LPStats{
		{Evaluations: 100},
		{Evaluations: 400},
		{Evaluations: 50},
	}}
	want := m.Busy(LPStats{Evaluations: 400})
	if got := r.ModeledTime(m); got != want {
		t.Fatalf("ModeledTime = %f, want %f", got, want)
	}
	// A larger critical path overrides the busiest LP.
	r.ModeledCritical = 2 * want
	if got := r.ModeledTime(m); got != 2*want {
		t.Fatalf("ModeledTime with critical = %f", got)
	}
	// Barriers and GVT rounds add on top.
	r.Barriers = 10
	r.GVTRounds = 5
	if got := r.ModeledTime(m); got <= 2*want {
		t.Fatal("global costs not added")
	}
}

func TestSequentialTimeAndSpeedup(t *testing.T) {
	m := DefaultCostModel()
	seq := SequentialTime(m, 100, 50, 50)
	if seq != m.EvalCost*100+m.EventCost*100 {
		t.Fatalf("SequentialTime = %f", seq)
	}
	if Speedup(10, 5) != 2 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("Speedup by zero not guarded")
	}
}

func TestTotalSums(t *testing.T) {
	f := func(a, b uint64) bool {
		r := RunStats{LPs: []LPStats{{Evaluations: a}, {Evaluations: b}}}
		return r.Total().Evaluations == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMentionsKeyCounters(t *testing.T) {
	r := RunStats{LPs: []LPStats{{Evaluations: 7, Rollbacks: 3}}}
	s := r.Summary(DefaultCostModel())
	for _, want := range []string{"evals=7", "rollbacks=3", "LPs=1", "modeled="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
