package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestCollectSnapshotsSink(t *testing.T) {
	r := metrics.NewRegistry("sync")
	r.LP(0).Evaluations = 5
	r.LP(1).Evaluations = 7
	g := r.Globals()
	g.Barriers = 3
	g.GVTRounds = 2
	g.ModeledCriticalNs = 123
	rs := Collect(r, 42*time.Millisecond)
	if len(rs.LPs) != 2 || rs.Total().Evaluations != 12 {
		t.Fatalf("LPs = %+v", rs.LPs)
	}
	if rs.Barriers != 3 || rs.GVTRounds != 2 || rs.ModeledCritical != 123 {
		t.Fatalf("globals = %+v", rs)
	}
	if rs.Wall != 42*time.Millisecond || g.WallNs != rs.Wall.Nanoseconds() {
		t.Fatalf("wall = %v (globals %d)", rs.Wall, g.WallNs)
	}
}

func TestBusyMonotonicInEveryCounter(t *testing.T) {
	m := DefaultCostModel()
	base := metrics.LPCounters{Evaluations: 10, EventsApplied: 10, MessagesSent: 2}
	b0 := m.Busy(base)
	inc := []func(*metrics.LPCounters){
		func(s *metrics.LPCounters) { s.Evaluations++ },
		func(s *metrics.LPCounters) { s.EventsApplied++ },
		func(s *metrics.LPCounters) { s.EventsScheduled++ },
		func(s *metrics.LPCounters) { s.MessagesSent++ },
		func(s *metrics.LPCounters) { s.MessagesRecv++ },
		func(s *metrics.LPCounters) { s.NullsSent++ },
		func(s *metrics.LPCounters) { s.NullsRecv++ },
		func(s *metrics.LPCounters) { s.Rollbacks++ },
		func(s *metrics.LPCounters) { s.EventsRolledBack++ },
		func(s *metrics.LPCounters) { s.AntiMessagesSent++ },
		func(s *metrics.LPCounters) { s.AntiMessagesRecv++ },
		func(s *metrics.LPCounters) { s.StateSavedWords++ },
		func(s *metrics.LPCounters) { s.Blocks++ },
	}
	for i, f := range inc {
		s := base
		f(&s)
		if m.Busy(s) <= b0 {
			t.Errorf("counter %d does not increase Busy", i)
		}
	}
}

func TestBarrierGrowsWithProcessors(t *testing.T) {
	m := DefaultCostModel()
	if m.Barrier(1) >= m.Barrier(2) || m.Barrier(8) >= m.Barrier(32) {
		t.Fatal("barrier cost not growing with processor count")
	}
	if m.GVT(1) >= m.GVT(16) {
		t.Fatal("GVT cost not growing")
	}
}

func TestModeledTimeUsesBusiestLP(t *testing.T) {
	m := DefaultCostModel()
	r := RunStats{LPs: []metrics.LPCounters{
		{Evaluations: 100},
		{Evaluations: 400},
		{Evaluations: 50},
	}}
	want := m.Busy(metrics.LPCounters{Evaluations: 400})
	if got := r.ModeledTime(m); got != want {
		t.Fatalf("ModeledTime = %f, want %f", got, want)
	}
	// A larger critical path overrides the busiest LP.
	r.ModeledCritical = 2 * want
	if got := r.ModeledTime(m); got != 2*want {
		t.Fatalf("ModeledTime with critical = %f", got)
	}
	// Barriers and GVT rounds add on top.
	r.Barriers = 10
	r.GVTRounds = 5
	if got := r.ModeledTime(m); got <= 2*want {
		t.Fatal("global costs not added")
	}
}

func TestSequentialTimeAndSpeedup(t *testing.T) {
	m := DefaultCostModel()
	seq := SequentialTime(m, 100, 50, 50)
	if seq != m.EvalCost*100+m.EventCost*100 {
		t.Fatalf("SequentialTime = %f", seq)
	}
	if Speedup(10, 5) != 2 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("Speedup by zero not guarded")
	}
}

func TestTotalSums(t *testing.T) {
	f := func(a, b uint64) bool {
		r := RunStats{LPs: []metrics.LPCounters{{Evaluations: a}, {Evaluations: b}}}
		return r.Total().Evaluations == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMentionsKeyCounters(t *testing.T) {
	r := RunStats{LPs: []metrics.LPCounters{{Evaluations: 7, Rollbacks: 3}}}
	s := r.Summary(DefaultCostModel())
	for _, want := range []string{"evals=7", "rollbacks=3", "LPs=1", "modeled="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
