package circuit

import "repro/internal/logic"

// Evaluate computes the new output value of a gate of the given kind.
//
// It is a pure function: fanin holds the current values of the gate's
// fanin nets (in declaration order), cur is the gate's current output, and
// prevClk is the clock/enable value sampled at the gate's previous
// evaluation (sequential kinds only). The second result is the new clock
// sample to store; combinational kinds return prevClk unchanged.
//
// Purity is load-bearing: Time Warp re-executes evaluations after rollback
// and the synchronous engine evaluates gates from multiple worker
// goroutines, both of which require that evaluation has no hidden state.
func Evaluate(kind Kind, fanin []logic.Value, cur, prevClk logic.Value) (out, clkSample logic.Value) {
	switch kind {
	case Input:
		// Inputs are externally driven; evaluation holds the driven value.
		return cur, prevClk
	case Const0:
		return logic.Zero, prevClk
	case Const1:
		return logic.One, prevClk
	case ConstX:
		return logic.X, prevClk
	case Buf, Output:
		return fanin[0].Buf(), prevClk
	case Not:
		return logic.Not(fanin[0]), prevClk
	case And:
		return logic.AndN(fanin...), prevClk
	case Nand:
		return logic.Not(logic.AndN(fanin...)), prevClk
	case Or:
		return logic.OrN(fanin...), prevClk
	case Nor:
		return logic.Not(logic.OrN(fanin...)), prevClk
	case Xor:
		return logic.XorN(fanin...), prevClk
	case Xnor:
		return logic.Not(logic.XorN(fanin...)), prevClk
	case Mux2:
		return evalMux(fanin[0], fanin[1], fanin[2]), prevClk
	case Tri:
		return evalTri(fanin[0], fanin[1]), prevClk
	case Resolve:
		return logic.ResolveN(fanin...), prevClk
	case DFF:
		return evalDFF(fanin[0], fanin[1], cur, prevClk)
	case DLatch:
		return evalDLatch(fanin[0], fanin[1], cur), fanin[1]
	}
	return logic.X, prevClk
}

// evalMux implements a 2:1 multiplexer with the standard pessimistic
// refinement: when the select is unknown but both data inputs agree on a
// driven value, that value is produced anyway.
func evalMux(sel, d0, d1 logic.Value) logic.Value {
	switch {
	case sel.IsLow():
		return d0.Buf()
	case sel.IsHigh():
		return d1.Buf()
	default:
		a, b := d0.Buf(), d1.Buf()
		if a == b && a != logic.X {
			return a
		}
		return logic.X
	}
}

// evalTri implements a tri-state driver: enabled it re-drives its data
// input, disabled it floats, and with an unknown enable it drives X.
func evalTri(en, d logic.Value) logic.Value {
	switch {
	case en.IsHigh():
		return d.Buf()
	case en.IsLow():
		return logic.Z
	default:
		return logic.X
	}
}

// evalDFF implements a rising-edge D flip-flop. An unambiguous rising edge
// loads D; an ambiguous transition into a high clock (the previous sample
// was not a driven level) pessimistically produces X, since an edge may or
// may not have occurred; anything else holds.
func evalDFF(d, clk, cur, prevClk logic.Value) (out, clkSample logic.Value) {
	switch {
	case logic.RisingEdge(prevClk, clk):
		return d.Buf(), clk
	case clk.IsHigh() && !prevClk.Known():
		return logic.X, clk
	default:
		return cur, clk
	}
}

// evalDLatch implements a transparent-high level-sensitive latch. While the
// enable is unknown the latch output degrades to X unless the held and
// incoming values agree.
func evalDLatch(d, en, cur logic.Value) logic.Value {
	switch {
	case en.IsHigh():
		return d.Buf()
	case en.IsLow():
		return cur
	default:
		if d.Buf() == cur && cur != logic.X {
			return cur
		}
		return logic.X
	}
}

// InitialValue returns the value every net of the given kind holds at time
// zero, before any evaluation, in the full 9-valued system. Engines running
// a reduced value system project this through logic.System.Project.
func InitialValue(kind Kind) logic.Value {
	switch kind {
	case Const0:
		return logic.Zero
	case Const1:
		return logic.One
	case ConstX:
		return logic.X
	default:
		return logic.U
	}
}

// InitState allocates and initializes the value and clock-sample vectors
// for a fresh simulation of c under the given value system.
func InitState(c *Circuit, sys logic.System) (val, prevClk []logic.Value) {
	val = make([]logic.Value, len(c.Gates))
	prevClk = make([]logic.Value, len(c.Gates))
	for id := range c.Gates {
		val[id] = sys.Project(InitialValue(c.Gates[id].Kind))
		prevClk[id] = sys.Project(logic.U)
	}
	return val, prevClk
}

// EvalGate is a convenience wrapper that gathers fanin values from val,
// evaluates gate id, and returns the results. scratch, if non-nil, is used
// as the fanin buffer to avoid allocation; it is grown as needed and
// returned.
func EvalGate(c *Circuit, id GateID, val, prevClk []logic.Value, scratch []logic.Value) (out, clkSample logic.Value, buf []logic.Value) {
	g := &c.Gates[id]
	if cap(scratch) < len(g.Fanin) {
		scratch = make([]logic.Value, len(g.Fanin))
	}
	scratch = scratch[:len(g.Fanin)]
	for i, f := range g.Fanin {
		scratch[i] = val[f]
	}
	out, clkSample = Evaluate(g.Kind, scratch, val[id], prevClk[id])
	return out, clkSample, scratch
}
