package circuit

import (
	"testing"

	"repro/internal/logic"
)

// buildNand2 builds a two-input NAND with named IO for reuse in tests.
func buildNand2(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	n := b.Gate(Nand, "n1", a, bb)
	b.Output("y", n)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildNand2(t)
	if c.NumGates() != 4 {
		t.Fatalf("NumGates = %d, want 4", c.NumGates())
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("IO counts wrong: %d in, %d out", len(c.Inputs), len(c.Outputs))
	}
	id, ok := c.ByName("n1")
	if !ok {
		t.Fatal("ByName(n1) missing")
	}
	if c.Gate(id).Kind != Nand {
		t.Fatalf("gate n1 kind = %v", c.Gate(id).Kind)
	}
	if _, ok := c.ByName("nope"); ok {
		t.Fatal("ByName(nope) found")
	}
}

func TestBuilderDuplicateName(t *testing.T) {
	b := NewBuilder()
	b.Input("a")
	b.Input("a")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestBuilderEmptyName(t *testing.T) {
	b := NewBuilder()
	b.Input("")
	if _, err := b.Build(); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestBuilderUndefinedFanin(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	b.Gate(And, "g", a, GateID(99))
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined fanin accepted")
	}
}

func TestBuilderBadArity(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	g := Gate{Kind: Mux2, Name: "m", Fanin: []GateID{a, bb}, Delay: 1}
	b.gates = append(b.gates, g)
	b.byName["m"] = GateID(len(b.gates) - 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("2-input mux accepted")
	}
}

func TestBuilderNegativeFaninFromFailedGate(t *testing.T) {
	b := NewBuilder()
	bad := b.Gate(And, "g") // zero-input AND is allowed (n-ary >= 1? no: min 1)
	_ = bad
	if _, err := b.Build(); err == nil {
		t.Fatal("zero-input AND accepted")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	// g1 and g2 form a combinational loop.
	g1 := b.add(Gate{Kind: And, Name: "g1", Fanin: []GateID{a, 3}, Delay: 1})
	_ = g1
	b.add(Gate{Kind: And, Name: "g2", Fanin: []GateID{1}, Delay: 1})
	b.add(Gate{Kind: Buf, Name: "g3", Fanin: []GateID{2}, Delay: 1})
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestSequentialCycleAccepted(t *testing.T) {
	// A DFF in a feedback loop (e.g. a toggle register) is legal.
	b := NewBuilder()
	clk := b.Input("clk")
	// Forward-declare by building in two steps: inv reads dff, dff reads inv.
	dff := b.add(Gate{Kind: DFF, Name: "q", Fanin: nil, Delay: 1})
	inv := b.Gate(Not, "nq", dff)
	b.gates[dff].Fanin = []GateID{inv, clk}
	b.Output("y", dff)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if err := c.CheckEventDriven(); err != nil {
		t.Fatalf("CheckEventDriven: %v", err)
	}
}

func TestLatchCycleThroughLatchAccepted(t *testing.T) {
	// Cross-coupled structure expressed with DLatch primitives is legal
	// because latches are state elements.
	b := NewBuilder()
	en := b.Input("en")
	d := b.Input("d")
	l1 := b.Gate(DLatch, "l1", d, en)
	b.Output("q", l1)
	if _, err := b.Build(); err != nil {
		t.Fatalf("latch circuit rejected: %v", err)
	}
}

func TestCheckEventDrivenRejectsZeroDelay(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	b.GateDelay(Not, "n", 0, a)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := c.CheckEventDriven(); err == nil {
		t.Fatal("zero-delay gate accepted by CheckEventDriven")
	}
}

func TestFanoutComputedAndDeduped(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	// x reads a twice (both XOR pins): fanout must list x once.
	x := b.Gate(Xor, "x", a, a)
	y := b.Gate(Not, "y", a)
	b.Output("o1", x)
	b.Output("o2", y)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fo := c.Fanout[a]
	if len(fo) != 2 || fo[0] != x || fo[1] != y {
		t.Fatalf("Fanout[a] = %v, want [%d %d]", fo, x, y)
	}
}

func TestMinMaxDelay(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	g1 := b.GateDelay(Not, "g1", 3, a)
	b.GateDelay(Buf, "g2", 7, g1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.MinDelay() != 1 { // the Output-less circuit still has input delay 1
		// Inputs are sources, excluded; gates g1(3), g2(7): min is 3.
		t.Logf("note: min delay = %d", c.MinDelay())
	}
	if got := c.MinDelay(); got != 3 {
		t.Fatalf("MinDelay = %d, want 3", got)
	}
	if got := c.MaxDelay(); got != 7 {
		t.Fatalf("MaxDelay = %d, want 7", got)
	}
}

func TestKindStringAndValidity(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %d not valid", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) valid")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("Kind(200).String() = %q", Kind(200).String())
	}
}

func TestEvaluateCombinational(t *testing.T) {
	v0, v1, vx := logic.Zero, logic.One, logic.X
	cases := []struct {
		kind  Kind
		fanin []logic.Value
		want  logic.Value
	}{
		{Buf, []logic.Value{v1}, v1},
		{Buf, []logic.Value{logic.H}, v1},
		{Output, []logic.Value{logic.L}, v0},
		{Not, []logic.Value{v1}, v0},
		{And, []logic.Value{v1, v1, v0}, v0},
		{And, []logic.Value{v1, v1, v1}, v1},
		{Nand, []logic.Value{v1, v1}, v0},
		{Or, []logic.Value{v0, v0, v1}, v1},
		{Nor, []logic.Value{v0, v0}, v1},
		{Xor, []logic.Value{v1, v1, v1}, v1},
		{Xnor, []logic.Value{v1, v0}, v0},
		{Mux2, []logic.Value{v0, v0, v1}, v0}, // sel=0 -> d0
		{Mux2, []logic.Value{v1, v0, v1}, v1}, // sel=1 -> d1
		{Mux2, []logic.Value{vx, v1, v1}, v1}, // unknown sel, agreeing data
		{Mux2, []logic.Value{vx, v0, v1}, vx}, // unknown sel, conflicting data
		{Tri, []logic.Value{v1, v0}, v0},      // enabled
		{Tri, []logic.Value{v0, v1}, logic.Z}, // disabled
		{Tri, []logic.Value{vx, v1}, vx},      // unknown enable
		{Resolve, []logic.Value{logic.Z, v1}, v1},
		{Resolve, []logic.Value{v0, v1}, vx},
		{Const0, nil, v0},
		{Const1, nil, v1},
		{ConstX, nil, vx},
	}
	for _, c := range cases {
		got, _ := Evaluate(c.kind, c.fanin, logic.U, logic.U)
		if got != c.want {
			t.Errorf("Evaluate(%v, %v) = %v, want %v", c.kind, c.fanin, got, c.want)
		}
	}
}

func TestEvaluateInputHolds(t *testing.T) {
	got, _ := Evaluate(Input, nil, logic.One, logic.U)
	if got != logic.One {
		t.Fatalf("Input evaluation must hold the driven value, got %v", got)
	}
}

func TestEvaluateDFF(t *testing.T) {
	d, clk := logic.One, logic.One
	// Rising edge loads D.
	out, cs := Evaluate(DFF, []logic.Value{d, clk}, logic.Zero, logic.Zero)
	if out != logic.One || cs != logic.One {
		t.Fatalf("rising edge: out=%v cs=%v", out, cs)
	}
	// High clock with no edge holds.
	out, _ = Evaluate(DFF, []logic.Value{logic.Zero, logic.One}, logic.One, logic.One)
	if out != logic.One {
		t.Fatalf("no edge must hold, got %v", out)
	}
	// Falling edge holds.
	out, cs = Evaluate(DFF, []logic.Value{logic.Zero, logic.Zero}, logic.One, logic.One)
	if out != logic.One || cs != logic.Zero {
		t.Fatalf("falling edge: out=%v cs=%v", out, cs)
	}
	// Ambiguous (unknown -> high) transition produces X.
	out, _ = Evaluate(DFF, []logic.Value{logic.One, logic.One}, logic.Zero, logic.X)
	if out != logic.X {
		t.Fatalf("ambiguous edge must give X, got %v", out)
	}
	// Weak clock levels count as levels.
	out, _ = Evaluate(DFF, []logic.Value{logic.One, logic.H}, logic.Zero, logic.L)
	if out != logic.One {
		t.Fatalf("weak rising edge must load, got %v", out)
	}
}

func TestEvaluateDLatch(t *testing.T) {
	// Transparent while enabled.
	out, _ := Evaluate(DLatch, []logic.Value{logic.One, logic.One}, logic.Zero, logic.U)
	if out != logic.One {
		t.Fatalf("transparent latch: got %v", out)
	}
	// Holds while disabled.
	out, _ = Evaluate(DLatch, []logic.Value{logic.Zero, logic.Zero}, logic.One, logic.U)
	if out != logic.One {
		t.Fatalf("opaque latch: got %v", out)
	}
	// Unknown enable with agreeing value keeps it.
	out, _ = Evaluate(DLatch, []logic.Value{logic.One, logic.X}, logic.One, logic.U)
	if out != logic.One {
		t.Fatalf("agreeing unknown-enable: got %v", out)
	}
	// Unknown enable with conflicting value degrades to X.
	out, _ = Evaluate(DLatch, []logic.Value{logic.Zero, logic.X}, logic.One, logic.U)
	if out != logic.X {
		t.Fatalf("conflicting unknown-enable: got %v", out)
	}
}

func TestInitStateProjection(t *testing.T) {
	c := buildNand2(t)
	val, prevClk := InitState(c, logic.TwoValued)
	for i, v := range val {
		if v != logic.Zero && v != logic.One {
			t.Fatalf("2-valued init val[%d] = %v", i, v)
		}
	}
	for i, v := range prevClk {
		if v != logic.Zero && v != logic.One {
			t.Fatalf("2-valued init prevClk[%d] = %v", i, v)
		}
	}
	val9, _ := InitState(c, logic.NineValued)
	for i, v := range val9 {
		if v != logic.U {
			t.Fatalf("9-valued init val[%d] = %v, want U", i, v)
		}
	}
}

func TestEvalGateScratchReuse(t *testing.T) {
	c := buildNand2(t)
	val, prevClk := InitState(c, logic.TwoValued)
	a, _ := c.ByName("a")
	bID, _ := c.ByName("b")
	n, _ := c.ByName("n1")
	val[a], val[bID] = logic.One, logic.One
	out, _, scratch := EvalGate(c, n, val, prevClk, nil)
	if out != logic.Zero {
		t.Fatalf("NAND(1,1) = %v", out)
	}
	val[bID] = logic.Zero
	out, _, scratch2 := EvalGate(c, n, val, prevClk, scratch)
	if out != logic.One {
		t.Fatalf("NAND(1,0) = %v", out)
	}
	if &scratch2[0] != &scratch[0] {
		t.Fatal("scratch buffer not reused")
	}
}

func TestLevelizeChain(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	g1 := b.Gate(Not, "g1", a)
	g2 := b.Gate(Not, "g2", g1)
	g3 := b.Gate(Not, "g3", g2)
	b.Output("y", g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("chain of 3 + output: %d levels, want 4", len(levels))
	}
	for i, l := range levels {
		if len(l) != 1 {
			t.Fatalf("level %d has %d gates", i, len(l))
		}
	}
}

func TestLevelizeRespectsDependencies(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	g1 := b.Gate(And, "g1", a, bb)
	g2 := b.Gate(Or, "g2", g1, a)
	g3 := b.Gate(Xor, "g3", g2, g1)
	b.Output("y", g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[GateID]int{}
	for i, l := range levels {
		for _, g := range l {
			pos[g] = i
		}
	}
	for id := range c.Gates {
		g := &c.Gates[id]
		if g.Kind.Source() || g.Kind.Sequential() {
			continue
		}
		for _, f := range g.Fanin {
			fg := &c.Gates[f]
			if fg.Kind.Source() || fg.Kind.Sequential() {
				continue
			}
			if pos[f] >= pos[GateID(id)] {
				t.Fatalf("gate %q at level %d not after fanin %q at level %d",
					g.Name, pos[GateID(id)], fg.Name, pos[f])
			}
		}
	}
}

func TestLevelizeSequentialLast(t *testing.T) {
	b := NewBuilder()
	clk := b.Input("clk")
	d := b.Input("d")
	inv := b.Gate(Not, "inv", d)
	ff := b.Gate(DFF, "ff", inv, clk)
	post := b.Gate(Not, "post", ff)
	b.Output("y", post)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	last := levels[len(levels)-1]
	foundFF := false
	for _, g := range last {
		if g == ff {
			foundFF = true
		}
	}
	if !foundFF {
		t.Fatalf("DFF not in final level: %v", levels)
	}
	// "post" reads the FF output and must NOT be after the FF level; it is
	// combinational from a level-0 source (the FF's registered output).
	if last[0] != ff || len(last) != 1 {
		t.Fatalf("final level should contain only the DFF, got %v", last)
	}
}

func TestTopoOrderCoversAllNonSources(t *testing.T) {
	c := buildNand2(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for id := range c.Gates {
		if !c.Gates[id].Kind.Source() {
			want++
		}
	}
	if len(order) != want {
		t.Fatalf("TopoOrder has %d gates, want %d", len(order), want)
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder()
	clk := b.Input("clk")
	d := b.Input("d")
	g1 := b.Gate(And, "g1", d, d)
	ff := b.Gate(DFF, "ff", g1, clk)
	lt := b.Gate(DLatch, "lt", ff, clk)
	b.Output("y", lt)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := c.ComputeStats()
	if s.Gates != 6 || s.Inputs != 2 || s.Outputs != 1 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.FlipFlops != 1 || s.Latches != 1 {
		t.Fatalf("seq counts wrong: %+v", s)
	}
	if s.ByKind[And] != 1 || s.ByKind[Input] != 2 {
		t.Fatalf("ByKind wrong: %v", s.ByKind)
	}
	if s.MaxFanout < 2 { // clk feeds ff and lt
		t.Fatalf("MaxFanout = %d", s.MaxFanout)
	}
	if s.AvgFanout <= 0 {
		t.Fatalf("AvgFanout = %f", s.AvgFanout)
	}
}

func TestConstBuilder(t *testing.T) {
	b := NewBuilder()
	c0 := b.Const("c0", logic.Zero)
	c1 := b.Const("c1", logic.One)
	cx := b.Const("cx", logic.X)
	g := b.Gate(And, "g", c0, c1, cx)
	b.Output("y", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Gate(c0).Kind != Const0 || c.Gate(c1).Kind != Const1 || c.Gate(cx).Kind != ConstX {
		t.Fatal("Const kinds wrong")
	}
}

func TestSetDelay(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	g := b.Gate(Not, "g", a)
	b.SetDelay(g, 5)
	b.SetDelay(GateID(99), 5) // out of range: recorded as error
	if _, err := b.Build(); err == nil {
		t.Fatal("SetDelay out of range accepted")
	}
}

func TestNewDirectConstructor(t *testing.T) {
	gates := []Gate{
		{Kind: Input, Name: "a", Delay: 1},
		{Kind: DFF, Name: "q", Fanin: []GateID{2, 3}, Delay: 1}, // forward refs
		{Kind: Not, Name: "nq", Fanin: []GateID{1}, Delay: 1},
		{Kind: Input, Name: "clk", Delay: 1},
		{Kind: Output, Name: "y", Fanin: []GateID{1}, Delay: 1},
	}
	c, err := New(gates, []GateID{0, 3}, []GateID{4})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 5 || len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("shape wrong: %d gates", c.NumGates())
	}
	if id, ok := c.ByName("nq"); !ok || id != 2 {
		t.Fatal("byName not built")
	}
	// Fanout computed: gate 1 (q) feeds nq and y.
	if len(c.Fanout[1]) != 2 {
		t.Fatalf("fanout of q = %v", c.Fanout[1])
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	good := []Gate{
		{Kind: Input, Name: "a", Delay: 1},
		{Kind: Not, Name: "n", Fanin: []GateID{0}, Delay: 1},
	}
	if _, err := New([]Gate{{Kind: Input, Name: "", Delay: 1}}, nil, nil); err == nil {
		t.Error("empty name accepted")
	}
	dup := []Gate{
		{Kind: Input, Name: "a", Delay: 1},
		{Kind: Input, Name: "a", Delay: 1},
	}
	if _, err := New(dup, nil, nil); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := New(good, []GateID{9}, nil); err == nil {
		t.Error("bad input id accepted")
	}
	if _, err := New(good, nil, []GateID{-1}); err == nil {
		t.Error("bad output id accepted")
	}
	cyc := []Gate{
		{Kind: Input, Name: "a", Delay: 1},
		{Kind: Not, Name: "x", Fanin: []GateID{2}, Delay: 1},
		{Kind: Not, Name: "y", Fanin: []GateID{1}, Delay: 1},
	}
	if _, err := New(cyc, nil, nil); err == nil {
		t.Error("combinational cycle accepted")
	}
}
