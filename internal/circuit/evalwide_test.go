package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// kindArities lists every gate kind with the fanin widths to exercise.
var kindArities = []struct {
	kind    Kind
	arities []int
}{
	{Input, []int{0}},
	{Const0, []int{0}},
	{Const1, []int{0}},
	{ConstX, []int{0}},
	{Buf, []int{1}},
	{Output, []int{1}},
	{Not, []int{1}},
	{And, []int{1, 2, 3, 4}},
	{Nand, []int{1, 2, 3, 4}},
	{Or, []int{1, 2, 3, 4}},
	{Nor, []int{1, 2, 3, 4}},
	{Xor, []int{1, 2, 3, 4}},
	{Xnor, []int{1, 2, 3, 4}},
	{Mux2, []int{3}},
	{Tri, []int{2}},
	{Resolve, []int{1, 2, 3}},
	{DFF, []int{2}},
	{DLatch, []int{2}},
}

func randWord(rng *rand.Rand) logic.Word {
	return logic.Word{L: rng.Uint64(), H: rng.Uint64()}
}

// TestEvaluateWideMatchesScalar drives EvaluateWide with random packed
// operands and checks that every lane equals the scalar Evaluate of that
// lane, for every kind and fanin arity. Any uint64 pair is a valid Word,
// so the random words cover the whole {X,0,1,Z} input space.
func TestEvaluateWideMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rounds = 64
	for _, ka := range kindArities {
		for _, n := range ka.arities {
			for r := 0; r < rounds; r++ {
				fanin := make([]logic.Word, n)
				for i := range fanin {
					fanin[i] = randWord(rng)
				}
				cur, prevClk := randWord(rng), randWord(rng)
				out, clkSample := EvaluateWide(ka.kind, fanin, cur, prevClk)
				sf := make([]logic.Value, n)
				for lane := 0; lane < logic.Lanes; lane++ {
					for i := range fanin {
						sf[i] = fanin[i].Get(lane)
					}
					wantOut, wantClk := Evaluate(ka.kind, sf, cur.Get(lane), prevClk.Get(lane))
					if got := out.Get(lane); got != wantOut.ToX01Z() {
						t.Fatalf("%v/%d lane %d: out %v, scalar %v (fanin %v cur %v prevClk %v)",
							ka.kind, n, lane, got, wantOut, sf, cur.Get(lane), prevClk.Get(lane))
					}
					if got := clkSample.Get(lane); got != wantClk.ToX01Z() {
						t.Fatalf("%v/%d lane %d: clkSample %v, scalar %v",
							ka.kind, n, lane, got, wantClk)
					}
				}
			}
		}
	}
}

// TestInitStateWideMatchesScalar pins the wide initial planes against the
// scalar ones, lane by lane, for both reduced systems.
func TestInitStateWideMatchesScalar(t *testing.T) {
	b := NewBuilder()
	in := b.Input("a")
	g := b.Gate(And, "g", in, b.Const("c1", logic.One))
	ff := b.Gate(DFF, "ff", g, in)
	b.Output("q", ff)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []logic.System{logic.TwoValued, logic.FourValued} {
		val, prevClk := InitState(c, sys)
		wval, wclk := InitStateWide(c, sys)
		for id := range c.Gates {
			for lane := 0; lane < logic.Lanes; lane += 17 {
				if got, want := wval[id].Get(lane), val[id].ToX01Z(); got != want {
					t.Errorf("%v: gate %d lane %d val %v, scalar %v", sys, id, lane, got, want)
				}
				if got, want := wclk[id].Get(lane), prevClk[id].ToX01Z(); got != want {
					t.Errorf("%v: gate %d lane %d prevClk %v, scalar %v", sys, id, lane, got, want)
				}
			}
		}
	}
}
