// Package circuit defines the gate-level netlist model shared by every
// simulation engine.
//
// A circuit is a directed graph of gates. Each gate drives exactly one net,
// identified with the gate's ID, so "net value" and "gate output value" are
// interchangeable. Multi-driver buses are modeled explicitly with Tri
// drivers feeding a Resolve node, which keeps every net single-driver while
// still exercising the IEEE 1164 resolution function.
//
// Circuits are immutable once built; all mutable simulation state (net
// values, flip-flop internals) lives in the engines. That split is what
// allows one circuit to be shared by concurrently running logical
// processes, and what makes Time Warp state saving cheap.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// GateID identifies a gate (equivalently, the net the gate drives).
// IDs are dense indices into Circuit.Gates.
type GateID int32

// Tick is a point in (or duration of) discrete simulated time.
type Tick uint64

// Kind enumerates the supported gate types.
type Kind uint8

// Gate kinds. Input and the constants are sources; Output is a sink marker
// with buffer semantics; DFF and DLatch are the sequential elements.
const (
	Input Kind = iota
	Const0
	Const1
	ConstX
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Mux2    // fanin: sel, d0, d1
	Tri     // fanin: en, d; drives Z when disabled
	Resolve // wired net: resolves all fanin drivers
	DFF     // fanin: d, clk; rising-edge triggered
	DLatch  // fanin: d, en; transparent while en is high
	Output  // fanin: 1; marks a primary output, buffer semantics

	numKinds
)

var kindNames = [numKinds]string{
	"INPUT", "CONST0", "CONST1", "CONSTX", "BUF", "NOT", "AND", "NAND",
	"OR", "NOR", "XOR", "XNOR", "MUX2", "TRI", "RESOLVE", "DFF", "DLATCH",
	"OUTPUT",
}

// String returns the conventional upper-case gate name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a defined gate kind.
func (k Kind) Valid() bool { return k < numKinds }

// Sequential reports whether gates of this kind hold state across time.
func (k Kind) Sequential() bool { return k == DFF || k == DLatch }

// Source reports whether gates of this kind have no fanin.
func (k Kind) Source() bool {
	return k == Input || k == Const0 || k == Const1 || k == ConstX
}

// arity returns the required fanin count; min == -1 means "at least min2".
func (k Kind) arity() (min, max int) {
	switch k {
	case Input, Const0, Const1, ConstX:
		return 0, 0
	case Buf, Not, Output:
		return 1, 1
	case And, Nand, Or, Nor, Xor, Xnor:
		return 1, -1 // n-ary, at least one input
	case Mux2:
		return 3, 3
	case Tri, DFF, DLatch:
		return 2, 2
	case Resolve:
		return 1, -1
	}
	return 0, 0
}

// Gate is one circuit element. Fanin order is significant for Mux2
// (sel, d0, d1), Tri (en, d), DFF (d, clk) and DLatch (d, en).
type Gate struct {
	Kind  Kind
	Name  string
	Fanin []GateID
	// Delay is the propagation delay from any input change to the output
	// change, in ticks. Event-driven engines require Delay >= 1; the
	// oblivious (cycle-based) engine ignores it.
	Delay Tick
}

// Circuit is an immutable gate-level netlist.
type Circuit struct {
	// Gates is indexed by GateID.
	Gates []Gate
	// Fanout[g] lists the gates reading net g, in ascending ID order with
	// duplicates removed (a gate appears once even if it reads g twice).
	Fanout [][]GateID
	// Inputs and Outputs list the primary input and output gates in
	// declaration order.
	Inputs  []GateID
	Outputs []GateID

	byName map[string]GateID
}

// NumGates returns the number of gates (and nets).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Gate returns the gate with the given ID.
func (c *Circuit) Gate(id GateID) *Gate { return &c.Gates[id] }

// ByName looks a gate up by name.
func (c *Circuit) ByName(name string) (GateID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MinDelay returns the smallest gate delay in the circuit (0 for an empty
// circuit). It bounds the lookahead available to conservative simulation.
func (c *Circuit) MinDelay() Tick {
	var min Tick
	for i := range c.Gates {
		if c.Gates[i].Kind.Source() {
			continue
		}
		d := c.Gates[i].Delay
		if min == 0 || d < min {
			min = d
		}
	}
	return min
}

// MaxDelay returns the largest gate delay in the circuit.
func (c *Circuit) MaxDelay() Tick {
	var max Tick
	for i := range c.Gates {
		if d := c.Gates[i].Delay; d > max {
			max = d
		}
	}
	return max
}

// New constructs a circuit directly from complete gate, input, and output
// lists, running the same validation and fanout computation as the
// builder. It is the path for programmatic netlist transformations (e.g.
// fault injection) that already have a consistent gate array, including
// feedback fanin references the incremental builder cannot express in one
// pass.
func New(gates []Gate, inputs, outputs []GateID) (*Circuit, error) {
	c := &Circuit{
		Gates:   gates,
		Inputs:  inputs,
		Outputs: outputs,
		byName:  make(map[string]GateID, len(gates)),
	}
	for id := range gates {
		name := gates[id].Name
		if name == "" {
			return nil, fmt.Errorf("circuit: gate %d has empty name", id)
		}
		if prev, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("circuit: duplicate gate name %q (gates %d and %d)", name, prev, id)
		}
		c.byName[name] = GateID(id)
	}
	for _, io := range [2][]GateID{inputs, outputs} {
		for _, g := range io {
			if g < 0 || int(g) >= len(gates) {
				return nil, fmt.Errorf("circuit: io list references undefined gate %d", g)
			}
		}
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.computeFanout()
	return c, nil
}

// Builder incrementally constructs a Circuit. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	gates   []Gate
	inputs  []GateID
	outputs []GateID
	byName  map[string]GateID
	errs    []error
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]GateID)}
}

// failf records a construction error; Build reports the first one.
func (b *Builder) failf(format string, args ...any) GateID {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return -1
}

// add appends a gate, enforcing unique non-empty names.
func (b *Builder) add(g Gate) GateID {
	if g.Name == "" {
		return b.failf("circuit: gate %d has empty name", len(b.gates))
	}
	if prev, dup := b.byName[g.Name]; dup {
		return b.failf("circuit: duplicate gate name %q (gates %d and %d)",
			g.Name, prev, len(b.gates))
	}
	id := GateID(len(b.gates))
	b.gates = append(b.gates, g)
	b.byName[g.Name] = id
	return id
}

// Input declares a primary input with unit delay.
func (b *Builder) Input(name string) GateID {
	id := b.add(Gate{Kind: Input, Name: name, Delay: 1})
	if id >= 0 {
		b.inputs = append(b.inputs, id)
	}
	return id
}

// Const declares a constant-source gate for v (one of 0, 1, X).
func (b *Builder) Const(name string, v logic.Value) GateID {
	switch v {
	case logic.Zero:
		return b.add(Gate{Kind: Const0, Name: name, Delay: 1})
	case logic.One:
		return b.add(Gate{Kind: Const1, Name: name, Delay: 1})
	default:
		return b.add(Gate{Kind: ConstX, Name: name, Delay: 1})
	}
}

// Gate declares a gate of the given kind with unit delay.
func (b *Builder) Gate(kind Kind, name string, fanin ...GateID) GateID {
	return b.GateDelay(kind, name, 1, fanin...)
}

// GateDelay declares a gate with an explicit propagation delay.
func (b *Builder) GateDelay(kind Kind, name string, delay Tick, fanin ...GateID) GateID {
	if !kind.Valid() {
		return b.failf("circuit: invalid kind for gate %q", name)
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(b.gates) {
			return b.failf("circuit: gate %q references undefined fanin %d", name, f)
		}
	}
	return b.add(Gate{Kind: kind, Name: name, Fanin: append([]GateID(nil), fanin...), Delay: delay})
}

// Output declares a primary output gate observing src.
func (b *Builder) Output(name string, src GateID) GateID {
	id := b.GateDelay(Output, name, 1, src)
	if id >= 0 {
		b.outputs = append(b.outputs, id)
	}
	return id
}

// SetFanin replaces the fanin of an already-declared gate. It exists so
// that feedback structures (flip-flops in loops) can be wired after both
// endpoints are declared; arity and reference checks still happen at Build.
func (b *Builder) SetFanin(id GateID, fanin []GateID) {
	if id < 0 || int(id) >= len(b.gates) {
		b.failf("circuit: SetFanin on undefined gate %d", id)
		return
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(b.gates) {
			b.failf("circuit: SetFanin on gate %q references undefined gate %d", b.gates[id].Name, f)
			return
		}
	}
	b.gates[id].Fanin = append([]GateID(nil), fanin...)
}

// FaninOf returns the current fanin of an already-declared gate (nil for
// out-of-range IDs). Generators use it to inspect partially built netlists.
func (b *Builder) FaninOf(id GateID) []GateID {
	if id < 0 || int(id) >= len(b.gates) {
		return nil
	}
	return b.gates[id].Fanin
}

// SetDelay overrides the delay of an already-declared gate.
func (b *Builder) SetDelay(id GateID, delay Tick) {
	if id < 0 || int(id) >= len(b.gates) {
		b.failf("circuit: SetDelay on undefined gate %d", id)
		return
	}
	b.gates[id].Delay = delay
}

// Build validates the netlist, computes fanout lists, and freezes the
// circuit. The builder must not be reused afterwards.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	c := &Circuit{
		Gates:   b.gates,
		Inputs:  b.inputs,
		Outputs: b.outputs,
		byName:  b.byName,
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.computeFanout()
	return c, nil
}

// validate checks arities and fanin references.
func (c *Circuit) validate() error {
	for id := range c.Gates {
		g := &c.Gates[id]
		if !g.Kind.Valid() {
			return fmt.Errorf("circuit: gate %q: invalid kind", g.Name)
		}
		min, max := g.Kind.arity()
		n := len(g.Fanin)
		if n < min || (max >= 0 && n > max) {
			return fmt.Errorf("circuit: gate %q (%v): fanin count %d outside [%d,%d]",
				g.Name, g.Kind, n, min, max)
		}
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= len(c.Gates) {
				return fmt.Errorf("circuit: gate %q references undefined gate %d", g.Name, f)
			}
		}
		if !g.Kind.Source() && g.Delay == 0 {
			// Zero delays are permitted at build time (the oblivious engine
			// does not use them) but flagged by CheckEventDriven below, so
			// nothing to do here.
			_ = g
		}
	}
	return c.checkCombinationalCycles()
}

// CheckEventDriven verifies the circuit satisfies the constraints of the
// event-driven engines: every non-source gate has delay >= 1 (the positive
// lookahead that two-phase timestep semantics and conservative null
// messages rely on).
func (c *Circuit) CheckEventDriven() error {
	for id := range c.Gates {
		g := &c.Gates[id]
		if !g.Kind.Source() && g.Delay == 0 {
			return fmt.Errorf("circuit: gate %q has zero delay; event-driven engines require delay >= 1", g.Name)
		}
	}
	return nil
}

// checkCombinationalCycles rejects cycles that pass only through
// combinational gates. Cycles through DFFs are legal (that is what
// sequential circuits are); purely combinational feedback with discrete
// delays can oscillate forever, so it is rejected at build time.
// Cross-coupled latch structures must therefore be expressed with the
// DLatch primitive.
func (c *Circuit) checkCombinationalCycles() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(c.Gates))
	// Iterative DFS to survive deep circuits.
	type frame struct {
		id   GateID
		next int
	}
	var stack []frame
	for start := range c.Gates {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{GateID(start), 0})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			g := &c.Gates[f.id]
			// Sequential gates break combinational cycles: do not traverse
			// through their fanin (their output is a state element).
			if g.Kind.Sequential() || f.next >= len(g.Fanin) {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			child := g.Fanin[f.next]
			f.next++
			switch color[child] {
			case white:
				color[child] = gray
				stack = append(stack, frame{child, 0})
			case gray:
				return fmt.Errorf("circuit: combinational cycle through gate %q", c.Gates[child].Name)
			}
		}
	}
	return nil
}

// computeFanout fills in Fanout from the fanin lists.
func (c *Circuit) computeFanout() {
	c.Fanout = make([][]GateID, len(c.Gates))
	for id := range c.Gates {
		for _, f := range c.Gates[id].Fanin {
			c.Fanout[f] = append(c.Fanout[f], GateID(id))
		}
	}
	for i := range c.Fanout {
		fo := c.Fanout[i]
		sort.Slice(fo, func(a, b int) bool { return fo[a] < fo[b] })
		// Deduplicate (a gate may read the same net through two pins).
		out := fo[:0]
		for j, g := range fo {
			if j == 0 || g != fo[j-1] {
				out = append(out, g)
			}
		}
		c.Fanout[i] = out
	}
}

// Stats summarizes circuit structure; the paper lists circuit structure as
// one of the five primary performance factors, so the experiment harness
// reports these alongside results.
type Stats struct {
	Gates      int
	ByKind     map[Kind]int
	Inputs     int
	Outputs    int
	FlipFlops  int
	Latches    int
	MaxFanout  int
	AvgFanout  float64
	CombDepth  int // longest combinational path, in gates
	MinDelay   Tick
	MaxDelay   Tick
	TotalNets  int
	TotalConns int // total fanin pin count
}

// ComputeStats derives structure statistics.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Gates:     len(c.Gates),
		ByKind:    make(map[Kind]int),
		Inputs:    len(c.Inputs),
		Outputs:   len(c.Outputs),
		TotalNets: len(c.Gates),
		MinDelay:  c.MinDelay(),
		MaxDelay:  c.MaxDelay(),
	}
	totalFanout := 0
	for id := range c.Gates {
		g := &c.Gates[id]
		s.ByKind[g.Kind]++
		s.TotalConns += len(g.Fanin)
		if g.Kind == DFF {
			s.FlipFlops++
		}
		if g.Kind == DLatch {
			s.Latches++
		}
		fo := len(c.Fanout[id])
		totalFanout += fo
		if fo > s.MaxFanout {
			s.MaxFanout = fo
		}
	}
	if len(c.Gates) > 0 {
		s.AvgFanout = float64(totalFanout) / float64(len(c.Gates))
	}
	if levels, err := c.Levelize(); err == nil {
		s.CombDepth = len(levels)
	}
	return s
}
