package circuit

import "fmt"

// Levelize partitions the non-source gates into topological levels over
// the combinational edges of the circuit: a gate's level is one greater
// than the maximum level of its combinational fanin, with sources (primary
// inputs, constants) and sequential outputs at level zero.
//
// Level-by-level evaluation is the schedule the oblivious (compiled-mode)
// engine uses: evaluating level k only after all of level k-1 guarantees
// every gate sees settled inputs, which is the "properly scheduled"
// correctness condition the paper describes for oblivious simulation.
//
// Sequential gates appear in the final returned level regardless of their
// structural depth, so a full pass (all levels in order) corresponds to one
// zero-delay evaluation cycle: combinational logic settles, then state
// elements sample their settled inputs.
func (c *Circuit) Levelize() ([][]GateID, error) {
	n := len(c.Gates)
	level := make([]int, n)
	indeg := make([]int, n)
	// Combinational in-degree: number of distinct fanin nets whose driver
	// is a non-source combinational gate. Distinctness matters because the
	// fanout lists used for decrementing are deduplicated: a gate reading
	// the same net through two pins is only one graph edge.
	seen := make(map[GateID]bool)
	for id := 0; id < n; id++ {
		g := &c.Gates[id]
		if g.Kind.Source() {
			continue
		}
		clear(seen)
		for _, f := range g.Fanin {
			if seen[f] {
				continue
			}
			seen[f] = true
			fg := &c.Gates[f]
			if !fg.Kind.Source() && !fg.Kind.Sequential() {
				indeg[id]++
			}
		}
	}
	// Kahn's algorithm over combinational edges.
	queue := make([]GateID, 0, n)
	for id := 0; id < n; id++ {
		if !c.Gates[id].Kind.Source() && indeg[id] == 0 {
			queue = append(queue, GateID(id))
			level[id] = 1
		}
	}
	maxLevel := 0
	processed := 0
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		processed++
		if level[g] > maxLevel {
			maxLevel = level[g]
		}
		if c.Gates[g].Kind.Sequential() {
			// Do not propagate through state elements.
			continue
		}
		for _, out := range c.Fanout[g] {
			if c.Gates[out].Kind.Source() {
				continue
			}
			if l := level[g] + 1; l > level[out] {
				level[out] = l
			}
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	want := 0
	for id := 0; id < n; id++ {
		if !c.Gates[id].Kind.Source() {
			want++
		}
	}
	if processed != want {
		return nil, fmt.Errorf("circuit: levelize: combinational cycle (processed %d of %d gates)", processed, want)
	}
	// Pin sequential gates to a dedicated final level.
	seqLevel := maxLevel + 1
	hasSeq := false
	for id := 0; id < n; id++ {
		if c.Gates[id].Kind.Sequential() {
			level[id] = seqLevel
			hasSeq = true
		}
	}
	if hasSeq {
		maxLevel = seqLevel
	}
	levels := make([][]GateID, maxLevel)
	for id := 0; id < n; id++ {
		if c.Gates[id].Kind.Source() {
			continue
		}
		l := level[id]
		levels[l-1] = append(levels[l-1], GateID(id))
	}
	// Drop empty levels (possible when the only gates were sequential).
	out := levels[:0]
	for _, l := range levels {
		if len(l) > 0 {
			out = append(out, l)
		}
	}
	return out, nil
}

// TopoOrder returns all non-source gates in a valid combinational
// evaluation order (levels flattened). It is the schedule used by
// compiled-code style evaluation.
func (c *Circuit) TopoOrder() ([]GateID, error) {
	levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	order := make([]GateID, 0, len(c.Gates))
	for _, l := range levels {
		order = append(order, l...)
	}
	return order, nil
}
