package circuit

import "repro/internal/logic"

// EvaluateWide is Evaluate on 64 packed lanes: each lane of the result is
// exactly Evaluate applied to that lane of the operands. The sequential
// kinds (DFF, DLatch) and the conditional kinds (Mux2, Tri) become
// lane-mask selects over the branch-free wide tables; everything else maps
// directly onto a wide table op.
//
// Like Evaluate it is pure, which the wide engines rely on for parallel
// evaluation and rollback re-execution.
func EvaluateWide(kind Kind, fanin []logic.Word, cur, prevClk logic.Word) (out, clkSample logic.Word) {
	switch kind {
	case Input:
		return cur, prevClk
	case Const0:
		return logic.Splat(logic.Zero), prevClk
	case Const1:
		return logic.Splat(logic.One), prevClk
	case ConstX:
		return logic.Splat(logic.X), prevClk
	case Buf, Output:
		return logic.WideBuf(fanin[0]), prevClk
	case Not:
		return logic.WideNot(fanin[0]), prevClk
	case And:
		return logic.WideAndN(fanin...), prevClk
	case Nand:
		return logic.WideNot(logic.WideAndN(fanin...)), prevClk
	case Or:
		return logic.WideOrN(fanin...), prevClk
	case Nor:
		return logic.WideNot(logic.WideOrN(fanin...)), prevClk
	case Xor:
		return logic.WideXorN(fanin...), prevClk
	case Xnor:
		return logic.WideNot(logic.WideXorN(fanin...)), prevClk
	case Mux2:
		return evalMuxWide(fanin[0], fanin[1], fanin[2]), prevClk
	case Tri:
		return evalTriWide(fanin[0], fanin[1]), prevClk
	case Resolve:
		return logic.WideResolveN(fanin...), prevClk
	case DFF:
		return evalDFFWide(fanin[0], fanin[1], cur, prevClk)
	case DLatch:
		return evalDLatchWide(fanin[0], fanin[1], cur), fanin[1]
	}
	return logic.Splat(logic.X), prevClk
}

// evalMuxWide is evalMux per lane: driven selects steer, undriven selects
// fall back to the pessimistic data-agreement refinement.
func evalMuxWide(sel, d0, d1 logic.Word) logic.Word {
	a, b := logic.WideBuf(d0), logic.WideBuf(d1)
	s0, s1 := sel.IsLow(), sel.IsHigh()
	// On the remaining (unknown/floating select) lanes: a if a==b and
	// driven, else X.
	agree0 := a.IsLow() & b.IsLow()
	agree1 := a.IsHigh() & b.IsHigh()
	amb := logic.Word{L: agree0 | ^(agree0 | agree1), H: agree1 | ^(agree0 | agree1)}
	out := logic.Select(s0, a, logic.Select(s1, b, amb))
	return out
}

// evalTriWide is evalTri per lane: enabled lanes re-drive data, disabled
// lanes float, unknown enables drive X.
func evalTriWide(en, d logic.Word) logic.Word {
	e0, e1 := en.IsLow(), en.IsHigh()
	ex := ^(e0 | e1)
	b := logic.WideBuf(d)
	return logic.Word{
		L: e1&b.L | ex,
		H: e1&b.H | ex,
	}
}

// evalDFFWide is evalDFF per lane: lanes with an unambiguous rising edge
// load D, lanes entering a high clock from an unknown sample degrade to X,
// all other lanes hold. The clock sample is the whole raw clock word.
func evalDFFWide(d, clk, cur, prevClk logic.Word) (out, clkSample logic.Word) {
	load := prevClk.IsLow() & clk.IsHigh()
	xload := clk.IsHigh() & ^prevClk.Known()
	b := logic.WideBuf(d)
	hold := ^(load | xload)
	out = logic.Word{
		L: load&b.L | xload | hold&cur.L,
		H: load&b.H | xload | hold&cur.H,
	}
	return out, clk
}

// evalDLatchWide is evalDLatch per lane: transparent lanes pass D, opaque
// lanes hold, unknown enables hold only where the held and incoming values
// agree on a driven level.
func evalDLatchWide(d, en, cur logic.Word) logic.Word {
	e0, e1 := en.IsLow(), en.IsHigh()
	ex := ^(e0 | e1)
	b := logic.WideBuf(d)
	agree := (b.IsLow() & cur.IsLow()) | (b.IsHigh() & cur.IsHigh())
	keep := e0 | ex&agree // hold lanes; remaining ex lanes go X
	x := ex &^ agree
	return logic.Word{
		L: e1&b.L | keep&cur.L | x,
		H: e1&b.H | keep&cur.H | x,
	}
}

// InitialWide returns the wide time-zero value of a gate kind under the
// given system: Splat of the projected scalar initial value.
func InitialWide(kind Kind, sys logic.System) logic.Word {
	return logic.Splat(sys.Project(InitialValue(kind)))
}

// InitStateWide allocates and initializes the wide value and clock-sample
// planes for a fresh wide simulation of c: every lane starts from the same
// projected initial value, exactly like InitState does for one lane.
func InitStateWide(c *Circuit, sys logic.System) (val, prevClk []logic.Word) {
	val = make([]logic.Word, len(c.Gates))
	prevClk = make([]logic.Word, len(c.Gates))
	clk0 := logic.Splat(sys.Project(logic.U))
	for id := range c.Gates {
		val[id] = InitialWide(c.Gates[id].Kind, sys)
		prevClk[id] = clk0
	}
	return val, prevClk
}

// EvalGateWide mirrors EvalGate for the wide planes.
func EvalGateWide(c *Circuit, id GateID, val, prevClk []logic.Word, scratch []logic.Word) (out, clkSample logic.Word, buf []logic.Word) {
	g := &c.Gates[id]
	if cap(scratch) < len(g.Fanin) {
		scratch = make([]logic.Word, len(g.Fanin))
	}
	scratch = scratch[:len(g.Fanin)]
	for i, f := range g.Fanin {
		scratch[i] = val[f]
	}
	out, clkSample = EvaluateWide(g.Kind, scratch, val[id], prevClk[id])
	return out, clkSample, scratch
}
