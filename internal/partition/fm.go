package partition

import (
	"container/heap"
	"math/rand"

	"repro/internal/circuit"
)

// FM implements Fiduccia–Mattheyses min-cut partitioning, the linear-time
// hypergraph refinement heuristic the paper reports has been "used
// extensively for logic partitioning with good results". k-way partitions
// come from recursive bisection; each bisection runs FM passes (single-cell
// moves chosen by gain under a balance constraint, best-prefix commit)
// until a pass yields no improvement.
//
// Balance bound: each bisection holds both sides within its tolerance of
// the weight-proportional target, and the deviations compound across the
// recursion levels; the property suite asserts imbalance <= 1.35 for the
// generator corpus.
func FM(c *circuit.Circuit, k int, w Weights, seed int64) *Partition {
	return recursiveBisect(c, k, w, seed, fmBisect)
}

// bisector improves an initial balanced 2-way split of the given vertices.
// side[i] is 0 or 1 per local vertex; targetA is side 0's target weight
// share of the subset total.
type bisector func(g *localGraph, side []uint8, targetA float64, rng *rand.Rand)

// recursiveBisect builds a k-way partition by recursively splitting the
// vertex set with the given 2-way refiner.
func recursiveBisect(c *circuit.Circuit, k int, w Weights, seed int64, refine bisector) *Partition {
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	rng := rand.New(rand.NewSource(seed))

	var rec func(verts []circuit.GateID, firstBlock, numBlocks int)
	rec = func(verts []circuit.GateID, firstBlock, numBlocks int) {
		if numBlocks == 1 || len(verts) == 0 {
			for _, v := range verts {
				p.Assign[v] = firstBlock
			}
			return
		}
		blocksA := numBlocks / 2
		blocksB := numBlocks - blocksA
		targetA := float64(blocksA) / float64(numBlocks)

		g := newLocalGraph(c, verts, w)
		side := initialSplit(g, targetA, rng)
		refine(g, side, targetA, rng)

		var aVerts, bVerts []circuit.GateID
		for i, v := range verts {
			if side[i] == 0 {
				aVerts = append(aVerts, v)
			} else {
				bVerts = append(bVerts, v)
			}
		}
		rec(aVerts, firstBlock, blocksA)
		rec(bVerts, firstBlock+blocksA, blocksB)
	}
	all := make([]circuit.GateID, c.NumGates())
	for i := range all {
		all[i] = circuit.GateID(i)
	}
	rec(all, 0, k)
	return p
}

// localGraph is the hypergraph induced on a vertex subset: one net per
// driver with at least one consumer inside the subset.
type localGraph struct {
	verts  []circuit.GateID
	index  map[circuit.GateID]int // global -> local
	w      []float64
	total  float64
	maxW   float64
	nets   [][]int // net -> local cells (driver first)
	netsOf [][]int // local cell -> nets touching it
}

func newLocalGraph(c *circuit.Circuit, verts []circuit.GateID, w Weights) *localGraph {
	g := &localGraph{
		verts: verts,
		index: make(map[circuit.GateID]int, len(verts)),
		w:     make([]float64, len(verts)),
	}
	for i, v := range verts {
		g.index[v] = i
		g.w[i] = w[v]
		g.total += w[v]
		if w[v] > g.maxW {
			g.maxW = w[v]
		}
	}
	g.netsOf = make([][]int, len(verts))
	for i, v := range verts {
		cells := []int{i}
		seen := map[int]bool{i: true}
		for _, dst := range c.Fanout[v] {
			if j, ok := g.index[dst]; ok && !seen[j] {
				seen[j] = true
				cells = append(cells, j)
			}
		}
		if len(cells) < 2 {
			continue
		}
		netID := len(g.nets)
		g.nets = append(g.nets, cells)
		for _, cell := range cells {
			g.netsOf[cell] = append(g.netsOf[cell], netID)
		}
	}
	return g
}

// initialSplit produces a weight-balanced random split with side-0 share
// close to targetA.
func initialSplit(g *localGraph, targetA float64, rng *rand.Rand) []uint8 {
	order := rng.Perm(len(g.verts))
	side := make([]uint8, len(g.verts))
	wantA := targetA * g.total
	var accA float64
	for _, i := range order {
		if accA < wantA {
			side[i] = 0
			accA += g.w[i]
		} else {
			side[i] = 1
		}
	}
	return side
}

// cutOf counts nets spanning both sides.
func (g *localGraph) cutOf(side []uint8) int {
	cut := 0
	for _, cells := range g.nets {
		s0 := side[cells[0]]
		for _, cell := range cells[1:] {
			if side[cell] != s0 {
				cut++
				break
			}
		}
	}
	return cut
}

// gainItem is a heap entry; stale entries are skipped on pop.
type gainItem struct {
	gain int
	cell int
	ver  int
}

type gainHeap []gainItem

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// fmBisect runs FM passes until a pass yields no cut improvement.
func fmBisect(g *localGraph, side []uint8, targetA float64, rng *rand.Rand) {
	if len(g.nets) == 0 {
		return
	}
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		if fmPass(g, side, targetA) <= 0 {
			return
		}
	}
}

// fmPass performs one full FM pass and returns the committed cut gain.
func fmPass(g *localGraph, side []uint8, targetA float64) int {
	n := len(g.verts)
	// Per-net side populations.
	cnt := make([][2]int, len(g.nets))
	for netID, cells := range g.nets {
		for _, cell := range cells {
			cnt[netID][side[cell]]++
		}
	}
	// Initial gains: FS(v) - TE(v): nets where v is alone on its side
	// minus nets entirely on v's side.
	gain := make([]int, n)
	for v := 0; v < n; v++ {
		for _, netID := range g.netsOf[v] {
			s := side[v]
			if cnt[netID][s] == 1 {
				gain[v]++
			}
			if cnt[netID][1-s] == 0 {
				gain[v]--
			}
		}
	}
	ver := make([]int, n)
	locked := make([]bool, n)
	h := make(gainHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, gainItem{gain[v], v, 0})
	}
	heap.Init(&h)

	bump := func(v, delta int) {
		if locked[v] {
			return
		}
		gain[v] += delta
		ver[v]++
		heap.Push(&h, gainItem{gain[v], v, ver[v]})
	}

	// Balance bounds: each side's weight must stay within one max-cell
	// weight (plus 2% slack) of its target.
	wantA := targetA * g.total
	slack := g.maxW + 0.02*g.total
	var wA float64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			wA += g.w[v]
		}
	}

	type move struct {
		cell int
		gain int
	}
	var moves []move
	cum, bestCum, bestIdx := 0, 0, -1

	for moved := 0; moved < n; moved++ {
		// Pop the best movable cell.
		var v int
		found := false
		for h.Len() > 0 {
			it := heap.Pop(&h).(gainItem)
			if locked[it.cell] || it.ver != ver[it.cell] {
				continue
			}
			// Balance check for moving it.cell off its side.
			var newWA float64
			if side[it.cell] == 0 {
				newWA = wA - g.w[it.cell]
			} else {
				newWA = wA + g.w[it.cell]
			}
			if newWA < wantA-slack || newWA > wantA+slack {
				// Not movable now; re-queue it with a stale marker so it
				// can come back later (after other moves change balance).
				// To avoid infinite loops, just lock it out of this pass.
				locked[it.cell] = true
				continue
			}
			v = it.cell
			found = true
			break
		}
		if !found {
			break
		}
		from := side[v]
		to := 1 - from
		locked[v] = true
		cum += gain[v]
		moves = append(moves, move{v, gain[v]})

		// Standard FM gain updates around the move.
		for _, netID := range g.netsOf[v] {
			cells := g.nets[netID]
			// Before the move.
			if cnt[netID][to] == 0 {
				for _, c2 := range cells {
					bump(c2, +1)
				}
			} else if cnt[netID][to] == 1 {
				for _, c2 := range cells {
					if side[c2] == to {
						bump(c2, -1)
					}
				}
			}
			cnt[netID][from]--
			cnt[netID][to]++
			side[v] = to // ensure the "after" scan sees the new side
			// After the move.
			if cnt[netID][from] == 0 {
				for _, c2 := range cells {
					bump(c2, -1)
				}
			} else if cnt[netID][from] == 1 {
				for _, c2 := range cells {
					if side[c2] == from {
						bump(c2, +1)
					}
				}
			}
			side[v] = from // restore until all nets processed
		}
		side[v] = to
		if from == 0 {
			wA -= g.w[v]
		} else {
			wA += g.w[v]
		}
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(moves) - 1
		}
	}

	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].cell
		side[v] = 1 - side[v]
	}
	return bestCum
}
