package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/vectors"
)

// testCircuit builds a mid-sized random DAG shared by the tests.
func testCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 600, Inputs: 16, Outputs: 10, Seed: 42, Locality: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var allMethods = []Method{
	MethodRandom, MethodContiguous, MethodStrings, MethodCones,
	MethodLevels, MethodKL, MethodFM, MethodAnneal, MethodMultilevel,
}

func TestAllMethodsProduceValidPartitions(t *testing.T) {
	c := testCircuit(t)
	for _, m := range allMethods {
		for _, k := range []int{1, 2, 3, 4, 8, 13} {
			opts := Options{Seed: 7, AnnealMoves: 5000}
			p, err := New(m, c, k, opts)
			if err != nil {
				t.Fatalf("%v k=%d: %v", m, k, err)
			}
			if err := p.Validate(c); err != nil {
				t.Fatalf("%v k=%d: %v", m, k, err)
			}
			// Every block of a small-k partition should be non-empty for a
			// 600-gate circuit.
			counts := make([]int, k)
			for _, b := range p.Assign {
				counts[b]++
			}
			for b, n := range counts {
				if n == 0 {
					t.Errorf("%v k=%d: block %d empty", m, k, b)
				}
			}
		}
	}
}

func TestMethodStringRoundTrip(t *testing.T) {
	for _, m := range allMethods {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Fatalf("ParseMethod(%q) = %v", m.String(), got)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if Method(99).String() != "Method(99)" {
		t.Fatal("unknown method string wrong")
	}
}

func TestNewArgumentValidation(t *testing.T) {
	c := testCircuit(t)
	if _, err := New(MethodRandom, c, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(MethodRandom, c, 2, Options{Weights: Weights{1, 2}}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := New(Method(99), c, 2, Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMinCutBeatsRandom(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	randCut := Random(c, 8, 1).CutLinks(c)
	for _, m := range []Method{MethodFM, MethodKL, MethodStrings, MethodCones, MethodContiguous, MethodMultilevel} {
		p, err := New(m, c, 8, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cut := p.CutLinks(c)
		if cut >= randCut {
			t.Errorf("%v cut %d not better than random %d", m, cut, randCut)
		}
		_ = w
	}
}

func TestFMImprovesInitialCut(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	fm := FM(c, 2, w, 3)
	rnd := Random(c, 2, 3)
	if fm.CutLinks(c) >= rnd.CutLinks(c) {
		t.Fatalf("FM cut %d >= random cut %d", fm.CutLinks(c), rnd.CutLinks(c))
	}
	// FM must stay reasonably balanced.
	if im := fm.Imbalance(w); im > 1.35 {
		t.Fatalf("FM imbalance %f", im)
	}
}

func TestKLBalanced(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	kl := KL(c, 4, w, 5)
	if im := kl.Imbalance(w); im > 1.6 {
		t.Fatalf("KL imbalance %f", im)
	}
}

func TestWeightedBalanceUsesWeights(t *testing.T) {
	c := testCircuit(t)
	// Skewed weights: first half of gates are 10x heavier.
	w := make(Weights, c.NumGates())
	for i := range w {
		if i < c.NumGates()/2 {
			w[i] = 10
		} else {
			w[i] = 1
		}
	}
	p := Contiguous(c, 4, w)
	if im := p.Imbalance(w); im > 1.5 {
		t.Fatalf("weighted contiguous imbalance %f", im)
	}
	// The same partition judged by the wrong (uniform) weights must look
	// worse-balanced, proving weights flowed into the cut points.
	uni := Contiguous(c, 4, WeightsUniform(c))
	if p.Imbalance(w) >= uni.Imbalance(w) {
		t.Fatalf("weight-aware partition (%f) not better than uniform (%f) under true weights",
			p.Imbalance(w), uni.Imbalance(w))
	}
}

func TestWeightsFromProfile(t *testing.T) {
	w := WeightsFromProfile([]uint64{0, 5, 100})
	if w[0] <= 0 {
		t.Fatal("zero-eval gate got non-positive weight")
	}
	if !(w[2] > w[1] && w[1] > w[0]) {
		t.Fatal("profile ordering lost")
	}
}

func TestPreSimulationImprovesLoadBalance(t *testing.T) {
	// Build a circuit with deliberately skewed activity: a hot multiplier
	// and a cold adder glued together.
	b := circuit.NewBuilder()
	var hotIn, coldIn []circuit.GateID
	for i := 0; i < 8; i++ {
		hotIn = append(hotIn, b.Input(nameN("h", i)))
	}
	for i := 0; i < 8; i++ {
		coldIn = append(coldIn, b.Input(nameN("c", i)))
	}
	prev := hotIn[0]
	for i := 0; i < 150; i++ {
		prev = b.Gate(circuit.Xor, nameN("hx", i), prev, hotIn[i%8])
	}
	b.Output("hot", prev)
	prevC := coldIn[0]
	for i := 0; i < 150; i++ {
		prevC = b.Gate(circuit.And, nameN("cx", i), prevC, coldIn[i%8])
	}
	b.Output("cold", prevC)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Stimulus toggles hot inputs every vector, cold inputs never.
	var chs []vectors.Change
	for _, in := range c.Inputs {
		chs = append(chs, vectors.Change{Time: 0, Input: in, Value: logic.Zero})
	}
	for k := 1; k <= 40; k++ {
		tck := circuit.Tick(k) * 200
		for i, in := range c.Inputs {
			if i < 8 { // hot inputs
				chs = append(chs, vectors.Change{Time: tck, Input: in, Value: logic.FromBool(k%2 == 1)})
			}
		}
	}
	stim := &vectors.Stimulus{Changes: chs, End: 40 * 200}
	stim.Sort()
	res, err := seq.Run(c, stim, seq.Horizon(c, stim), seq.Config{System: logic.TwoValued, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := WeightsFromProfile(res.EvalsByGate)

	uniform := FM(c, 2, WeightsUniform(c), 9)
	weighted := FM(c, 2, prof, 9)
	// Judged by true activity, the pre-simulation-weighted partition must
	// balance load better than the structural one.
	if weighted.Imbalance(prof) >= uniform.Imbalance(prof) {
		t.Fatalf("pre-simulation did not help: weighted %f vs uniform %f",
			weighted.Imbalance(prof), uniform.Imbalance(prof))
	}
}

func nameN(p string, i int) string {
	return p + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

// TestPartitionInvariantsQuick property-checks random partitions.
func TestPartitionInvariantsQuick(t *testing.T) {
	c := testCircuit(t)
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		p := Random(c, k, seed)
		if err := p.Validate(c); err != nil {
			return false
		}
		blocks := p.BlockGates()
		total := 0
		for _, bg := range blocks {
			total += len(bg)
		}
		if total != c.NumGates() {
			return false
		}
		// Cut of a 1-block partition is zero.
		if k == 1 && p.CutLinks(c) != 0 {
			return false
		}
		// Imbalance is always >= 1 (within floating error).
		return p.Imbalance(WeightsUniform(c)) >= 0.999
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = reflect.TypeOf
}

func TestCutLinksManual(t *testing.T) {
	// a -> x, y; x -> y. Partition {a,x | y}: links a->y and x->y cross: 2.
	b := circuit.NewBuilder()
	a := b.Input("a")
	x := b.Gate(circuit.Not, "x", a)
	y := b.Gate(circuit.And, "y", a, x)
	b.Output("o", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	o, _ := c.ByName("o")
	p := &Partition{Blocks: 2, Assign: make([]int, c.NumGates())}
	p.Assign[a], p.Assign[x], p.Assign[y], p.Assign[o] = 0, 0, 1, 1
	if cut := p.CutLinks(c); cut != 2 {
		t.Fatalf("cut = %d, want 2", cut)
	}
	// Duplicate consumers in one block count once.
	p.Assign[x] = 1
	// links: a->x(b1), a->y(b1) same block -> 1; x->y internal.
	if cut := p.CutLinks(c); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
}

func TestLevelsSpreadsLevelsAcrossBlocks(t *testing.T) {
	// A wide single-level circuit: every gate reads only inputs, so all
	// gates share one level and must be spread across the blocks.
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	for i := 0; i < 32; i++ {
		b.Gate(circuit.And, nameN("g", i), a, bb)
	}
	g0, _ := b.Build()
	p, err := Levels(g0, 4, WeightsUniform(g0))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for g := range g0.Gates {
		if g0.Gates[g].Kind == circuit.And {
			counts[p.Assign[g]]++
		}
	}
	for b2, n := range counts {
		if n != 8 {
			t.Fatalf("block %d has %d of the level's gates, want 8", b2, n)
		}
	}
}

func TestAnnealRespectsMoveBudget(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	// A tiny budget must still return a valid partition.
	p := Anneal(c, 4, w, 1, 10)
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	// A large budget should improve on the contiguous starting point's cut
	// or at least not be catastrophically worse.
	big := Anneal(c, 4, w, 1, 80_000)
	start := Contiguous(c, 4, w)
	if big.CutLinks(c) > 2*start.CutLinks(c) {
		t.Fatalf("anneal cut %d blew up vs start %d", big.CutLinks(c), start.CutLinks(c))
	}
}

func TestSequentialCircuitPartitioning(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 300, Inputs: 8, Outputs: 4, Seed: 2, FFRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allMethods {
		p, err := New(m, c, 4, Options{Seed: 3, AnnealMoves: 3000})
		if err != nil {
			t.Fatalf("%v on sequential circuit: %v", m, err)
		}
		if err := p.Validate(c); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func BenchmarkFM8Way(b *testing.B) {
	c := testCircuit(b)
	w := WeightsUniform(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FM(c, 8, w, int64(i))
	}
}

func BenchmarkStrings8Way(b *testing.B) {
	c := testCircuit(b)
	w := WeightsUniform(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Strings(c, 8, w)
	}
}

func TestMultilevelCoarseningInvariants(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	verts := make([]circuit.GateID, c.NumGates())
	for i := range verts {
		verts[i] = circuit.GateID(i)
	}
	g := newLocalGraph(c, verts, w)
	rng := rand.New(rand.NewSource(3))
	cg, mapping, ok := coarsen(g, rng)
	if !ok {
		t.Fatal("no contraction on a connected graph")
	}
	if len(cg.verts) >= len(g.verts) {
		t.Fatalf("coarsening did not shrink: %d -> %d", len(g.verts), len(cg.verts))
	}
	// Mapping is total and in range; coarse weights conserve total weight.
	var coarseTotal float64
	for _, cw := range cg.w {
		coarseTotal += cw
	}
	if diff := coarseTotal - g.total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("weight not conserved: %f vs %f", coarseTotal, g.total)
	}
	seen := make([]bool, len(cg.verts))
	for v, cv := range mapping {
		if cv < 0 || cv >= len(cg.verts) {
			t.Fatalf("vertex %d maps out of range: %d", v, cv)
		}
		seen[cv] = true
	}
	for cv, s := range seen {
		if !s {
			t.Fatalf("coarse vertex %d has no fine preimage", cv)
		}
	}
	// No singleton nets survive.
	for i, cells := range cg.nets {
		if len(cells) < 2 {
			t.Fatalf("coarse net %d has %d cells", i, len(cells))
		}
	}
}

func TestMultilevelQualityComparableToFM(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 3000, Inputs: 48, Outputs: 24, Seed: 9, Locality: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	w := WeightsUniform(c)
	ml := Multilevel(c, 8, w, 4)
	fm := FM(c, 8, w, 4)
	mlCut, fmCut := ml.CutLinks(c), fm.CutLinks(c)
	t.Logf("cut: multilevel=%d fm=%d", mlCut, fmCut)
	// Multilevel must be in FM's league (allow 25% slack for seed noise)
	// and well balanced.
	if mlCut > fmCut+fmCut/4 {
		t.Fatalf("multilevel cut %d much worse than FM %d", mlCut, fmCut)
	}
	if im := ml.Imbalance(w); im > 1.4 {
		t.Fatalf("multilevel imbalance %f", im)
	}
}
