// Package partition assigns gates to logical processes.
//
// Partitioning and mapping is one of the five performance factors the paper
// identifies, and its Section III surveys the heuristics implemented here:
// random assignment (the control), Levendel's strings, Smith's fanin
// cones, level-based concurrency-preserving assignment, Kernighan–Lin and
// Fiduccia–Mattheyses min-cut bisection borrowed from physical design, and
// simulated annealing. All of them balance the same two competing
// objectives the paper states: uniform computational load across
// processors and minimum communication volume between them.
//
// Computational load is not the gate count: it is the evaluation frequency,
// which depends on the vectors (the paper's "pre-simulation" point). Every
// algorithm therefore accepts per-gate weights; WeightsUniform gives the
// naive structural balance and WeightsFromProfile converts a sequential
// pre-simulation run into measured activity weights.
package partition

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/circuit"
)

// Partition assigns every gate of a circuit to one of Blocks logical
// processes.
type Partition struct {
	Blocks int
	// Assign maps GateID -> block index in [0, Blocks).
	Assign []int

	// blockGates caches the per-block gate lists: engines ask for them at
	// every Run, and the partition is immutable once built. Guarded by a
	// Once so a partition shared across concurrent runs stays race-free.
	bgOnce     sync.Once
	blockGates [][]circuit.GateID
}

// Validate checks the partition covers the circuit.
func (p *Partition) Validate(c *circuit.Circuit) error {
	if p.Blocks < 1 {
		return fmt.Errorf("partition: %d blocks", p.Blocks)
	}
	if len(p.Assign) != c.NumGates() {
		return fmt.Errorf("partition: assignment covers %d of %d gates", len(p.Assign), c.NumGates())
	}
	for g, b := range p.Assign {
		if b < 0 || b >= p.Blocks {
			return fmt.Errorf("partition: gate %d assigned to invalid block %d", g, b)
		}
	}
	return nil
}

// BlockGates returns the gates of each block, in ascending gate order. The
// result is computed once and cached; callers must treat it as read-only.
func (p *Partition) BlockGates() [][]circuit.GateID {
	p.bgOnce.Do(func() {
		counts := make([]int, p.Blocks)
		for _, b := range p.Assign {
			counts[b]++
		}
		out := make([][]circuit.GateID, p.Blocks)
		for b, n := range counts {
			out[b] = make([]circuit.GateID, 0, n)
		}
		for g, b := range p.Assign {
			out[b] = append(out[b], circuit.GateID(g))
		}
		p.blockGates = out
	})
	return p.blockGates
}

// Group folds the partition's LPs into contiguous, load-balanced shard
// groups for distributed execution, returning an LP -> shard map in
// [0, shards). Contiguity makes the layout a pure function of the
// partition, which distributed recovery relies on: a restarted attempt
// reproduces the same shard layout and so can restore per-shard
// checkpoint restrictions written by its predecessor. Weights are
// per-gate loads (nil for uniform); an LP's load is the sum over its
// gates. Every shard receives at least one LP (shards is clamped to
// [1, Blocks]).
func (p *Partition) Group(shards int, w Weights) []int {
	n := p.Blocks
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	load := make([]float64, n)
	for g, b := range p.Assign {
		x := 1.0
		if w != nil {
			x = w[g]
		}
		load[b] += x
	}
	var total float64
	for _, x := range load {
		total += x
	}
	target := total / float64(shards)
	out := make([]int, n)
	s := 0
	var acc float64
	for lp := 0; lp < n; lp++ {
		// Advance when the current shard met its load target, or when the
		// remaining shards would otherwise outnumber the remaining LPs.
		if s < shards-1 && (acc >= target || shards-s > n-lp) {
			s++
			acc = 0
		}
		out[lp] = s
		acc += load[lp]
	}
	return out
}

// CutLinks counts directed cross-block communication links: pairs
// (net, consumer block) with the consumer in a different block than the
// driver. This is the per-event message count, the communication-volume
// objective the heuristics minimize.
func (p *Partition) CutLinks(c *circuit.Circuit) int {
	cut := 0
	seen := make(map[int]bool)
	for g := range c.Gates {
		src := p.Assign[g]
		clear(seen)
		for _, dst := range c.Fanout[g] {
			db := p.Assign[dst]
			if db != src && !seen[db] {
				seen[db] = true
				cut++
			}
		}
	}
	return cut
}

// Weights holds per-gate computational load estimates.
type Weights []float64

// WeightsUniform weights every gate equally (structural balance).
func WeightsUniform(c *circuit.Circuit) Weights {
	w := make(Weights, c.NumGates())
	for i := range w {
		w[i] = 1
	}
	return w
}

// WeightsFromProfile converts per-gate evaluation counts from a
// pre-simulation run into weights. Gates that never evaluated get a small
// floor weight so they still contribute to balance decisions.
func WeightsFromProfile(evals []uint64) Weights {
	w := make(Weights, len(evals))
	for i, n := range evals {
		w[i] = float64(n) + 0.1
	}
	return w
}

// BlockLoads sums the weights per block.
func (p *Partition) BlockLoads(w Weights) []float64 {
	loads := make([]float64, p.Blocks)
	for g, b := range p.Assign {
		loads[b] += w[g]
	}
	return loads
}

// Imbalance is max block load divided by mean block load (1.0 = perfect).
func (p *Partition) Imbalance(w Weights) float64 {
	loads := p.BlockLoads(w)
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(p.Blocks))
}

// Quality bundles the two competing metrics for reporting.
type Quality struct {
	CutLinks  int
	Imbalance float64
}

// Evaluate computes the quality of a partition.
func (p *Partition) Evaluate(c *circuit.Circuit, w Weights) Quality {
	return Quality{CutLinks: p.CutLinks(c), Imbalance: p.Imbalance(w)}
}

// Method names a partitioning algorithm for configuration and reporting.
type Method uint8

// The implemented algorithms.
const (
	MethodRandom Method = iota
	MethodContiguous
	MethodStrings
	MethodCones
	MethodLevels
	MethodKL
	MethodFM
	MethodAnneal
	MethodMultilevel
	MethodConeSplit
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodRandom:
		return "random"
	case MethodContiguous:
		return "contiguous"
	case MethodStrings:
		return "strings"
	case MethodCones:
		return "cones"
	case MethodLevels:
		return "levels"
	case MethodKL:
		return "kl"
	case MethodFM:
		return "fm"
	case MethodAnneal:
		return "anneal"
	case MethodMultilevel:
		return "multilevel"
	case MethodConeSplit:
		return "cone-split"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// ParseMethod converts a method name to a Method.
func ParseMethod(s string) (Method, error) {
	for m := MethodRandom; m <= MethodConeSplit; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("partition: unknown method %q", s)
}

// Options parameterize New.
type Options struct {
	// Weights are the per-gate load estimates; nil means uniform.
	Weights Weights
	// Seed feeds the randomized algorithms.
	Seed int64
	// AnnealMoves bounds simulated annealing's move budget; 0 uses a
	// default proportional to circuit size.
	AnnealMoves int
}

// New runs the selected partitioning algorithm, producing k blocks.
func New(m Method, c *circuit.Circuit, k int, opts Options) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1")
	}
	if opts.Weights == nil {
		opts.Weights = WeightsUniform(c)
	}
	if len(opts.Weights) != c.NumGates() {
		return nil, fmt.Errorf("partition: %d weights for %d gates", len(opts.Weights), c.NumGates())
	}
	var p *Partition
	var err error
	switch m {
	case MethodRandom:
		p = Random(c, k, opts.Seed)
	case MethodContiguous:
		p = Contiguous(c, k, opts.Weights)
	case MethodStrings:
		p = Strings(c, k, opts.Weights)
	case MethodCones:
		p = Cones(c, k, opts.Weights)
	case MethodLevels:
		p, err = Levels(c, k, opts.Weights)
	case MethodKL:
		p = KL(c, k, opts.Weights, opts.Seed)
	case MethodFM:
		p = FM(c, k, opts.Weights, opts.Seed)
	case MethodAnneal:
		p = Anneal(c, k, opts.Weights, opts.Seed, opts.AnnealMoves)
	case MethodMultilevel:
		p = Multilevel(c, k, opts.Weights, opts.Seed)
	case MethodConeSplit:
		p, _ = ConeSplit(c, k, opts.Weights)
	default:
		return nil, fmt.Errorf("partition: unknown method %v", m)
	}
	if err != nil {
		return nil, err
	}
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	return p, nil
}

// Random assigns gates to blocks uniformly at random — the paper's
// implicit baseline that every heuristic must beat on cut size.
func Random(c *circuit.Circuit, k int, seed int64) *Partition {
	rng := rand.New(rand.NewSource(seed))
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	for g := range p.Assign {
		p.Assign[g] = rng.Intn(k)
	}
	return p
}

// Contiguous deals gates to blocks in ID order, cutting at weight
// boundaries so loads balance. Gate IDs correlate with creation order and
// therefore with structural locality, making this a surprisingly strong
// cheap heuristic for generated circuits.
func Contiguous(c *circuit.Circuit, k int, w Weights) *Partition {
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	var total float64
	for _, x := range w {
		total += x
	}
	target := total / float64(k)
	block := 0
	var acc float64
	for g := range p.Assign {
		if acc >= target && block < k-1 {
			block++
			acc = 0
		}
		p.Assign[g] = block
		acc += w[g]
	}
	return p
}

// lightest returns the index of the least-loaded block.
func lightest(loads []float64) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	return best
}
