package partition

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// propertyCorpus generates the random-circuit corpus the partition
// property suite sweeps: combinational DAGs and sequential netlists of
// varied size and shape.
func propertyCorpus(t *testing.T) []*circuit.Circuit {
	t.Helper()
	var cs []*circuit.Circuit
	for seed := int64(1); seed <= 6; seed++ {
		gates := 120 + int(seed)*171
		dag, err := gen.RandomDAG(gen.RandomConfig{
			Gates: gates, Inputs: 8 + int(seed), Outputs: 5 + int(seed), Seed: seed, Locality: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, dag)
		sq, err := gen.RandomSeq(gen.RandomConfig{
			Gates: gates, Inputs: 8 + int(seed), Outputs: 5 + int(seed), Seed: seed + 100,
			Locality: 0.6, FFRatio: 0.15,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, sq)
	}
	return cs
}

// imbalanceBound is each heuristic's documented balance bound (see the
// doc comment on the corresponding constructor). Cones has no constant
// bound — its greedy list-scheduling bound depends on the heaviest fanin
// cone and is checked separately.
var imbalanceBound = map[Method]float64{
	MethodStrings:    1.25,
	MethodKL:         1.25,
	MethodFM:         1.35,
	MethodAnneal:     2.0,
	MethodMultilevel: 1.40,
}

// recountCut recomputes the directed cross-block link count from scratch,
// independently of Partition.CutLinks: one count per (driver gate,
// consumer block) pair with the consumer in a foreign block.
func recountCut(c *circuit.Circuit, p *Partition) int {
	pairs := map[int]struct{}{}
	for g := range c.Gates {
		for _, dst := range c.Fanout[g] {
			if p.Assign[dst] != p.Assign[g] {
				pairs[g*p.Blocks+p.Assign[dst]] = struct{}{}
			}
		}
	}
	return len(pairs)
}

// maxConeWeight computes the heaviest full transitive-fanin cone over all
// gates (each gate's cone includes itself). Every item the Cones heuristic
// places is a subset of some gate's full cone, so this bounds the heaviest
// placed item from above.
func maxConeWeight(c *circuit.Circuit, w Weights) float64 {
	var best float64
	mark := make([]int, c.NumGates())
	for root := 0; root < c.NumGates(); root++ {
		stamp := root + 1
		var sum float64
		stack := []circuit.GateID{circuit.GateID(root)}
		mark[root] = stamp
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sum += w[g]
			for _, f := range c.Gates[g].Fanin {
				if mark[f] != stamp {
					mark[f] = stamp
					stack = append(stack, f)
				}
			}
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// TestPartitionProperties sweeps random circuits across the real
// heuristics and part counts, asserting for every combination:
//
//   - the partition validates and has the requested part count;
//   - every gate is assigned exactly once (BlockGates is an exact
//     disjoint cover);
//   - the reported cut equals an independently recomputed cut;
//   - imbalance stays within the heuristic's documented bound.
func TestPartitionProperties(t *testing.T) {
	methods := []Method{
		MethodStrings, MethodCones, MethodKL, MethodFM, MethodAnneal, MethodMultilevel,
	}
	ks := []int{2, 3, 5, 8}
	if testing.Short() {
		ks = []int{2, 5}
	}
	for ci, c := range propertyCorpus(t) {
		w := WeightsUniform(c)
		maxCone := maxConeWeight(c, w)
		total := float64(c.NumGates())
		for _, m := range methods {
			for _, k := range ks {
				p, err := New(m, c, k, Options{Seed: int64(ci) + 1, AnnealMoves: 4000})
				if err != nil {
					t.Fatalf("circuit %d %v k=%d: %v", ci, m, k, err)
				}
				if err := p.Validate(c); err != nil {
					t.Fatalf("circuit %d %v k=%d: %v", ci, m, k, err)
				}
				if p.Blocks != k {
					t.Fatalf("circuit %d %v: Blocks = %d, want %d", ci, m, p.Blocks, k)
				}

				// Exact disjoint cover: each gate appears in exactly the
				// block Assign names, and nowhere else.
				seen := make([]int, c.NumGates())
				for b, gates := range p.BlockGates() {
					for _, g := range gates {
						seen[g]++
						if p.Assign[g] != b {
							t.Fatalf("circuit %d %v k=%d: gate %d listed in block %d but assigned %d",
								ci, m, k, g, b, p.Assign[g])
						}
					}
				}
				for g, n := range seen {
					if n != 1 {
						t.Fatalf("circuit %d %v k=%d: gate %d assigned %d times", ci, m, k, g, n)
					}
				}

				if got, want := p.CutLinks(c), recountCut(c, p); got != want {
					t.Errorf("circuit %d %v k=%d: CutLinks = %d, independent recount = %d",
						ci, m, k, got, want)
				}

				im := p.Imbalance(w)
				if m == MethodCones {
					// Greedy list-scheduling bound with the independently
					// computed heaviest possible item.
					bound := 1 + maxCone/(total/float64(k))
					if im > bound {
						t.Errorf("circuit %d cones k=%d: imbalance %.3f exceeds greedy bound %.3f",
							ci, k, im, bound)
					}
				} else if bound := imbalanceBound[m]; im > bound {
					t.Errorf("circuit %d %v k=%d: imbalance %.3f exceeds documented bound %.2f",
						ci, m, k, im, bound)
				}
			}
		}
	}
}
