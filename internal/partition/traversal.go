package partition

import (
	"repro/internal/circuit"
)

// Strings implements the strings algorithm of Levendel, Menon, and Patel:
// starting from each primary input (and then from any still-unassigned
// gate), follow the fanout chain depth-first until it dead-ends in assigned
// territory or a primary output, and place the whole string on the
// currently lightest block. Strings keep tightly coupled driver/consumer
// chains together, trading balance precision for low cut.
//
// Balance bound: placement is greedy onto the lightest block, so the max
// block load is at most the mean plus the heaviest single string. Strings
// are short on realistic circuits (fanout chains dead-end quickly), so the
// property suite asserts imbalance <= 1.25 for the generator corpus.
func Strings(c *circuit.Circuit, k int, w Weights) *Partition {
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	for g := range p.Assign {
		p.Assign[g] = -1
	}
	loads := make([]float64, k)

	assignString := func(start circuit.GateID) {
		block := lightest(loads)
		g := start
		for {
			p.Assign[g] = block
			loads[block] += w[g]
			next := circuit.GateID(-1)
			for _, out := range c.Fanout[g] {
				if p.Assign[out] < 0 {
					next = out
					break
				}
			}
			if next < 0 {
				return
			}
			g = next
		}
	}

	for _, in := range c.Inputs {
		if p.Assign[in] < 0 {
			assignString(in)
		}
	}
	// Repeat from inputs until their reachable strings are exhausted, then
	// sweep any remaining gates (e.g. constants, gates fed only by
	// flip-flop loops).
	for {
		grew := false
		for _, in := range c.Inputs {
			for _, out := range c.Fanout[in] {
				if p.Assign[out] < 0 {
					assignString(out)
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	for g := range p.Assign {
		if p.Assign[g] < 0 {
			assignString(circuit.GateID(g))
		}
	}
	return p
}

// Cones implements fanin-cone partitioning in the style of Smith,
// Underwood, and Mercer: for each primary output, gather its still-
// unassigned transitive fanin cone breadth-first and place the cone on the
// lightest block. Cones cluster the logic that computes each output, so
// output-to-output independence becomes block-to-block independence.
//
// Balance bound: balance is subordinate to cone integrity — a dominant
// output cone lands on one block whole. The guarantee is the greedy
// list-scheduling bound: max block load <= mean load + the heaviest item
// placed, and every item is a subset of some gate's full fanin cone, so
// imbalance <= 1 + maxConeWeight/meanLoad. The property suite asserts
// exactly that bound with an independently recomputed cone weight.
func Cones(c *circuit.Circuit, k int, w Weights) *Partition {
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	for g := range p.Assign {
		p.Assign[g] = -1
	}
	loads := make([]float64, k)

	assignCone := func(root circuit.GateID) {
		if p.Assign[root] >= 0 {
			return
		}
		block := lightest(loads)
		queue := []circuit.GateID{root}
		p.Assign[root] = block
		loads[block] += w[root]
		for len(queue) > 0 {
			g := queue[0]
			queue = queue[1:]
			for _, f := range c.Gates[g].Fanin {
				if p.Assign[f] < 0 {
					p.Assign[f] = block
					loads[block] += w[f]
					queue = append(queue, f)
				}
			}
		}
	}

	for _, out := range c.Outputs {
		assignCone(out)
	}
	for g := c.NumGates() - 1; g >= 0; g-- {
		assignCone(circuit.GateID(g))
	}
	return p
}

// Levels implements concurrency-preserving level partitioning: gates at
// the same topological level can evaluate in the same timestep, so dealing
// each level across the blocks maximizes the number of blocks with work at
// every simulated time — the objective synchronous simulation cares about
// most. The deal is weight-aware (each level's gates go to the lightest
// blocks first).
func Levels(c *circuit.Circuit, k int, w Weights) (*Partition, error) {
	levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	p := &Partition{Blocks: k, Assign: make([]int, c.NumGates())}
	for g := range p.Assign {
		p.Assign[g] = -1
	}
	loads := make([]float64, k)
	place := func(g circuit.GateID) {
		b := lightest(loads)
		p.Assign[g] = b
		loads[b] += w[g]
	}
	for _, level := range levels {
		for _, g := range level {
			place(g)
		}
	}
	// Sources (inputs, constants) are not in the levelization; placing each
	// with the block that consumes it most keeps input events local.
	for g := range p.Assign {
		if p.Assign[g] >= 0 {
			continue
		}
		counts := make(map[int]int)
		best, bestN := -1, -1
		for _, out := range c.Fanout[g] {
			if b := p.Assign[out]; b >= 0 {
				counts[b]++
				if counts[b] > bestN {
					best, bestN = b, counts[b]
				}
			}
		}
		if best < 0 {
			best = lightest(loads)
		}
		p.Assign[g] = best
		loads[best] += w[g]
	}
	return p, nil
}
