package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// Group is the LP -> shard layout distributed runs are built on; it
// must be total, contiguous, deterministic, and leave no shard empty —
// recovery restarts depend on a restarted attempt reproducing it.
func TestGroupLayout(t *testing.T) {
	c, err := gen.ByName("ripple8", gen.Unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, lps := range []int{1, 3, 7, 16} {
		p, err := New(MethodContiguous, c, lps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		w := make(Weights, c.NumGates())
		for g := range w {
			w[g] = 0.25 + rng.Float64()
		}
		for _, shards := range []int{1, 2, 3, lps, lps + 5} {
			for _, weights := range []Weights{nil, w} {
				m := p.Group(shards, weights)
				if len(m) != p.Blocks {
					t.Fatalf("lps=%d shards=%d: map covers %d LPs", lps, shards, len(m))
				}
				want := shards
				if want > p.Blocks {
					want = p.Blocks
				}
				seen := make([]bool, want)
				prev := 0
				for lp, s := range m {
					if s < 0 || s >= want {
						t.Fatalf("lps=%d shards=%d: lp %d mapped to shard %d of %d", lps, shards, lp, s, want)
					}
					if s < prev || s > prev+1 {
						t.Fatalf("lps=%d shards=%d: mapping not contiguous at lp %d (%d after %d)", lps, shards, lp, s, prev)
					}
					prev = s
					seen[s] = true
				}
				for s, ok := range seen {
					if !ok {
						t.Errorf("lps=%d shards=%d: shard %d empty", lps, shards, s)
					}
				}
				again := p.Group(shards, weights)
				for lp := range m {
					if m[lp] != again[lp] {
						t.Fatalf("lps=%d shards=%d: nondeterministic at lp %d", lps, shards, lp)
					}
				}
			}
		}
	}
}
