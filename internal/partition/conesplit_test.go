package partition

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

// TestConeSplitBoundaryProperty: every cross-block link either leaves a
// source/sequential driver (the synchronization boundary by design) or
// lands on a sequential reader's clock pin — a combinational net never
// crosses between two combinational gates.
func TestConeSplitBoundaryProperty(t *testing.T) {
	seqc, err := gen.RandomSeq(gen.RandomConfig{Gates: 400, Inputs: 10, Outputs: 6, Seed: 4, FFRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*circuit.Circuit{testCircuit(t), seqc} {
		for _, k := range []int{1, 2, 4, 9} {
			p, cones := ConeSplit(c, k, WeightsUniform(c))
			if err := p.Validate(c); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if cones < 1 {
				t.Fatalf("k=%d: %d cones", k, cones)
			}
			for g := range c.Gates {
				src := circuit.GateID(g)
				kind := c.Gates[g].Kind
				for _, dst := range c.Fanout[src] {
					if p.Assign[src] == p.Assign[dst] {
						continue
					}
					if kind.Source() || kind.Sequential() || c.Gates[dst].Kind.Sequential() {
						continue
					}
					t.Fatalf("k=%d: combinational net %d (%v) crosses to combinational gate %d (%v)",
						k, src, kind, dst, c.Gates[dst].Kind)
				}
			}
		}
	}
}

// TestConeSplitExactCoverAndDeterminism: the assignment covers every gate,
// is deterministic, and packs whole cones (a cone's gates share a block).
func TestConeSplitExactCoverAndDeterminism(t *testing.T) {
	c := testCircuit(t)
	w := WeightsUniform(c)
	p1, n1 := ConeSplit(c, 4, w)
	p2, n2 := ConeSplit(c, 4, w)
	if n1 != n2 {
		t.Fatalf("cone count nondeterministic: %d vs %d", n1, n2)
	}
	for g := range p1.Assign {
		if p1.Assign[g] != p2.Assign[g] {
			t.Fatalf("assignment nondeterministic at gate %d", g)
		}
	}
	// Whole-cone packing: both endpoints of a comb-comb edge share a block.
	for g := range c.Gates {
		if c.Gates[g].Kind.Source() || c.Gates[g].Kind.Sequential() {
			continue
		}
		for _, f := range c.Gates[g].Fanin {
			if fk := c.Gates[f].Kind; fk.Source() || fk.Sequential() {
				continue
			}
			if p1.Assign[g] != p1.Assign[f] {
				t.Fatalf("cone split across blocks: %d and its fanin %d", g, f)
			}
		}
	}
}

// TestConeSplitMethodRegistration: the Method plumbing (String, ParseMethod,
// New) reaches ConeSplit, and k exceeding the cone count stays valid (the
// surplus blocks are simply empty — cones are never split).
func TestConeSplitMethodRegistration(t *testing.T) {
	if MethodConeSplit.String() != "cone-split" {
		t.Fatalf("String() = %q", MethodConeSplit.String())
	}
	m, err := ParseMethod("cone-split")
	if err != nil || m != MethodConeSplit {
		t.Fatalf("ParseMethod: %v %v", m, err)
	}
	b := circuit.NewBuilder()
	a := b.Input("a")
	x := b.Gate(circuit.Not, "x", a)
	y := b.Gate(circuit.And, "y", a, x)
	b.Output("o", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(MethodConeSplit, c, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	if p.Blocks != 8 {
		t.Fatalf("Blocks = %d", p.Blocks)
	}
	// One comb cone: every gate of it lands together.
	o, _ := c.ByName("o")
	if p.Assign[x] != p.Assign[y] || p.Assign[y] != p.Assign[o] {
		t.Fatalf("single cone split: %v", p.Assign)
	}
}

// TestLocalCutLinksMultiPin is the regression for the annealing delta bug:
// a gate reading one net through two pins (the exact shape structural
// hashing produces when it merges a gate's two fanin drivers) must count
// that net's cut contribution once, not once per pin.
func TestLocalCutLinksMultiPin(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	x := b.Gate(circuit.Not, "x", a)
	y := b.Gate(circuit.Xor, "y", x, x) // two pins, one net
	b.Output("o", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	o, _ := c.ByName("o")
	assign := make([]int, c.NumGates())
	assign[a], assign[x] = 0, 0
	assign[y], assign[o] = 1, 1
	seen := make(map[int]bool)
	// Nets incident to y: its own output (crosses to nobody foreign — o is
	// in y's block) and the single fanin net x, which crosses once.
	if got := localCutLinks(c, assign, y, seen); got != 1 {
		t.Fatalf("localCutLinks(y) = %d, want 1 (multi-pin fanin double-counted)", got)
	}
	// The same quantity via the deduplicated Circuit.Fanout agrees.
	if got := netCutLinks(c, assign, x, seen); got != 1 {
		t.Fatalf("netCutLinks(x) = %d, want 1", got)
	}
	// A genuinely distinct pair of fanin nets still counts both.
	assign[x] = 1
	// y's fanin net x now internal; net a->x crosses? a in 0, x in 1: the
	// nets incident to x are its output (read by y, same block: 0 cut) and
	// fanin a (crossing into block 1: 1 cut).
	if got := localCutLinks(c, assign, x, seen); got != 1 {
		t.Fatalf("localCutLinks(x) = %d, want 1", got)
	}
}

// TestAnnealMultiPinCircuit: annealing over a circuit full of multi-pin
// reads stays valid and its cost bookkeeping does not corrupt the final
// partition (pre-fix, the doubled deltas biased accept/reject decisions).
func TestAnnealMultiPinCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	prev := a
	for i := 0; i < 60; i++ {
		n := b.Gate(circuit.Not, nameN("n", i), prev)
		prev = b.Gate(circuit.Xor, nameN("p", i), n, n)
	}
	b.Output("o", prev)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Anneal(c, 3, WeightsUniform(c), 5, 4000)
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
}
