package partition

import (
	"sort"

	"repro/internal/circuit"
)

// ConeSplit groups each combinational cone — the connected component of
// combinational gates bounded by sources and sequential elements — into a
// single block, then packs whole cones onto k blocks greedily by weight.
// A sequential element joins the cone computing its data input, so the
// only nets crossing blocks are sequential outputs (and shared primary
// inputs): exactly the state-element boundaries where the engines must
// synchronize. The second result is the number of cones found.
//
// This is the partitioning half of the cone-split execution mode: each
// fat block is then evaluated obliviously in one levelized sweep (the
// kernel's EnableSweep path) instead of gate-by-gate event selection, so
// conservative engines exchange lookahead for whole-cone evaluation and
// the null-message volume drops with the block count.
func ConeSplit(c *circuit.Circuit, k int, w Weights) (*Partition, int) {
	n := c.NumGates()
	uf := newUnionFind(n)

	// Union combinational gates with their combinational fanin; a
	// sequential gate joins its data cone but sequential OUTPUTS never
	// merge their readers (that is the synchronization boundary).
	for g := 0; g < n; g++ {
		kind := c.Gates[g].Kind
		if kind.Source() {
			continue
		}
		fanin := c.Gates[g].Fanin
		if kind.Sequential() {
			if d := fanin[0]; !c.Gates[d].Kind.Source() && !c.Gates[d].Kind.Sequential() {
				uf.union(g, int(d))
			}
			continue
		}
		for _, f := range fanin {
			if fk := c.Gates[f].Kind; !fk.Source() && !fk.Sequential() {
				uf.union(g, int(f))
			}
		}
	}

	// Sources go with the component that reads them most: a shared input
	// is replicated traffic either way, but the heaviest consumer saves
	// the most link crossings.
	for g := 0; g < n; g++ {
		if !c.Gates[g].Kind.Source() {
			continue
		}
		votes := make(map[int]int)
		for _, dst := range c.Fanout[g] {
			votes[uf.find(int(dst))]++
		}
		best, bestVotes := -1, 0
		for root, v := range votes {
			if v > bestVotes || (v == bestVotes && root < best) {
				best, bestVotes = root, v
			}
		}
		if best >= 0 {
			uf.attach(g, best)
		}
	}

	// Collect components and count the true cones (components containing
	// at least one non-source gate).
	compIx := make(map[int]int)
	var comps [][]circuit.GateID
	for g := 0; g < n; g++ {
		root := uf.find(g)
		ix, ok := compIx[root]
		if !ok {
			ix = len(comps)
			compIx[root] = ix
			comps = append(comps, nil)
		}
		comps[ix] = append(comps[ix], circuit.GateID(g))
	}
	cones := 0
	for _, comp := range comps {
		for _, g := range comp {
			if !c.Gates[g].Kind.Source() {
				cones++
				break
			}
		}
	}

	// Greedy whole-cone packing: heaviest cone first onto the lightest
	// block. Cones are never split, so blocks can stay uneven (and some
	// may be empty when there are fewer cones than blocks) — that is the
	// documented trade for synchronizing only at sequential boundaries.
	weight := make([]float64, len(comps))
	for i, comp := range comps {
		for _, g := range comp {
			weight[i] += w[g]
		}
	}
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weight[order[a]] != weight[order[b]] {
			return weight[order[a]] > weight[order[b]]
		}
		return order[a] < order[b]
	})
	p := &Partition{Blocks: k, Assign: make([]int, n)}
	loads := make([]float64, k)
	for _, ci := range order {
		b := 0
		for i := 1; i < k; i++ {
			if loads[i] < loads[b] {
				b = i
			}
		}
		loads[b] += weight[ci]
		for _, g := range comps[ci] {
			p.Assign[g] = b
		}
	}
	return p, cones
}

// unionFind is a plain weighted-union path-halving disjoint-set forest.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// attach joins a into the set rooted at root without re-rooting it, so
// roots captured before a sweep of attach calls stay valid.
func (u *unionFind) attach(a, root int) {
	u.parent[u.find(a)] = root
}
