package partition

import (
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// Anneal implements simulated-annealing k-way partitioning. The paper notes
// annealing "has suffered from two problems": prohibitive runtime and the
// difficulty of choosing a cost function. Both are visible here by design —
// the move budget is explicit (so experiment E4 can show the quality/time
// trade-off against KL/FM) and the cost function is the documented
// cut + lambda * imbalance^2 combination.
//
// Moves reassign one random gate to one random other block; the temperature
// follows a geometric schedule from an initial value calibrated to accept
// most early uphill moves.
//
// Balance bound: the cost function penalizes imbalance quadratically but
// never forbids it, so the guarantee is soft; the property suite asserts
// imbalance <= 2.0 for the generator corpus at realistic move budgets.
func Anneal(c *circuit.Circuit, k int, w Weights, seed int64, moves int) *Partition {
	if moves <= 0 {
		moves = 60 * c.NumGates()
	}
	rng := rand.New(rand.NewSource(seed))
	p := Contiguous(c, k, w)
	if k < 2 {
		return p
	}
	n := c.NumGates()

	// Incremental cut bookkeeping: cutOf(g) = number of distinct foreign
	// blocks among g's consumers plus, for each fanin driver, whether g is
	// the sole consumer of that driver in g's block ... recomputing exact
	// incremental deltas for the (net, consumer-block) metric is what the
	// delta function below does for the two affected gates' neighborhoods.
	var total float64
	for _, x := range w {
		total += x
	}
	target := total / float64(k)
	loads := p.BlockLoads(w)

	// localCut computes the cut links contributed by the nets incident to
	// gate g (its own output net plus each fanin net).
	seen := make(map[int]bool, 8)
	localCut := func(g circuit.GateID) int { return localCutLinks(c, p.Assign, g, seen) }
	// imbalancePenalty is quadratic in each block's deviation from target,
	// normalized so it is commensurate with cut counts.
	lambda := 4.0 / (target*target + 1)
	blockPenalty := func(b int) float64 {
		dev := loads[b] - target
		return lambda * dev * dev
	}

	// Calibrate the starting temperature from random move deltas.
	temp := 1.0
	{
		var sum float64
		samples := 50
		for i := 0; i < samples; i++ {
			g := circuit.GateID(rng.Intn(n))
			sum += float64(localCut(g)) + 1
		}
		temp = sum / float64(samples)
	}
	cooling := math.Pow(0.01/temp, 1/float64(moves))

	for i := 0; i < moves; i++ {
		g := circuit.GateID(rng.Intn(n))
		from := p.Assign[g]
		to := rng.Intn(k)
		if to == from {
			temp *= cooling
			continue
		}
		before := float64(localCut(g)) + blockPenalty(from) + blockPenalty(to)
		p.Assign[g] = to
		loads[from] -= w[g]
		loads[to] += w[g]
		after := float64(localCut(g)) + blockPenalty(from) + blockPenalty(to)
		delta := after - before
		if delta > 0 && rng.Float64() >= math.Exp(-delta/temp) {
			// Reject: undo.
			p.Assign[g] = from
			loads[from] += w[g]
			loads[to] -= w[g]
		}
		temp *= cooling
	}
	return p
}

// netCutLinks counts the cut links of net src under assign: the number of
// distinct consumer blocks other than the driver's own. Circuit.Fanout is
// already deduplicated, so a consumer reading src through several pins
// contributes its block once.
func netCutLinks(c *circuit.Circuit, assign []int, src circuit.GateID, seen map[int]bool) int {
	cut := 0
	clear(seen)
	sb := assign[src]
	for _, dst := range c.Fanout[src] {
		if db := assign[dst]; db != sb && !seen[db] {
			seen[db] = true
			cut++
		}
	}
	return cut
}

// localCutLinks sums the cut links of every net incident to gate g: its
// own output net plus each distinct fanin net. Gate.Fanin, unlike
// Circuit.Fanout, is NOT deduplicated — a gate may read one net through
// two pins (structural hashing produces exactly that shape when it merges
// a gate's two fanin drivers) — so duplicate fanin entries must be
// skipped or the net's contribution is double-counted, biasing every
// annealing accept/reject delta on such circuits.
func localCutLinks(c *circuit.Circuit, assign []int, g circuit.GateID, seen map[int]bool) int {
	cut := netCutLinks(c, assign, g, seen)
	fanin := c.Gates[g].Fanin
	for pi, f := range fanin {
		dup := false
		for _, prev := range fanin[:pi] {
			if prev == f {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cut += netCutLinks(c, assign, f, seen)
	}
	return cut
}
