package partition

import (
	"container/heap"
	"math/rand"

	"repro/internal/circuit"
)

// KL implements Kernighan–Lin min-cut partitioning: pairwise swaps between
// the two sides, committed as the best-gain prefix of a pass. It is the
// historical ancestor of FM the paper cites; k-way partitions come from the
// same recursive bisection scaffold. Pair selection uses the standard
// practical refinement of examining the top-D candidates from each side
// rather than all O(n^2) pairs.
//
// Balance bound: swaps exchange one gate for one gate, so each bisection
// keeps the initial half/half weight split to within the heaviest gate;
// the property suite asserts imbalance <= 1.25 for the generator corpus.
func KL(c *circuit.Circuit, k int, w Weights, seed int64) *Partition {
	return recursiveBisect(c, k, w, seed, klBisect)
}

// edge is one endpoint of the KL adjacency structure.
type edge struct {
	to int
	w  int
}

// klBisect runs KL passes until no improvement.
func klBisect(g *localGraph, side []uint8, targetA float64, rng *rand.Rand) {
	n := len(g.verts)
	if n < 2 || len(g.nets) == 0 {
		return
	}
	// Edge graph: driver-consumer edges from each net, duplicate edges
	// merged by weight.
	adjMap := make([]map[int]int, n)
	addEdge := func(a, b int) {
		if adjMap[a] == nil {
			adjMap[a] = make(map[int]int)
		}
		adjMap[a][b]++
	}
	for _, cells := range g.nets {
		drv := cells[0]
		for _, dst := range cells[1:] {
			addEdge(drv, dst)
			addEdge(dst, drv)
		}
	}
	adj := make([][]edge, n)
	for v, m := range adjMap {
		for to, wt := range m {
			adj[v] = append(adj[v], edge{to, wt})
		}
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		if klPass(g, side, adj) <= 0 {
			return
		}
	}
}

// klPass performs one KL pass (a sequence of tentative best swaps, then
// commits the best prefix) and returns the committed gain.
func klPass(g *localGraph, side []uint8, adj [][]edge) int {
	n := len(g.verts)
	// D[v] = external cost - internal cost.
	d := make([]int, n)
	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			if side[e.to] != side[v] {
				d[v] += e.w
			} else {
				d[v] -= e.w
			}
		}
	}
	ver := make([]int, n)
	locked := make([]bool, n)
	heaps := [2]gainHeap{}
	for v := 0; v < n; v++ {
		heaps[side[v]] = append(heaps[side[v]], gainItem{d[v], v, 0})
	}
	heap.Init(&heaps[0])
	heap.Init(&heaps[1])

	// topK pops up to k valid entries from side s (pushing them back).
	topK := func(s uint8, k int) []int {
		var out []int
		var keep []gainItem
		for len(out) < k && heaps[s].Len() > 0 {
			it := heap.Pop(&heaps[s]).(gainItem)
			if locked[it.cell] || it.ver != ver[it.cell] || side[it.cell] != s {
				continue
			}
			out = append(out, it.cell)
			keep = append(keep, it)
		}
		for _, it := range keep {
			heap.Push(&heaps[s], it)
		}
		return out
	}
	crossW := func(a, b int) int {
		for _, e := range adj[a] {
			if e.to == b {
				return e.w
			}
		}
		return 0
	}
	bump := func(v int, delta int) {
		if locked[v] {
			return
		}
		d[v] += delta
		ver[v]++
		heap.Push(&heaps[side[v]], gainItem{d[v], v, ver[v]})
	}

	type swap struct{ a, b, gain int }
	var swaps []swap
	cum, bestCum, bestIdx := 0, 0, -1

	const candidates = 6
	for {
		as := topK(0, candidates)
		bs := topK(1, candidates)
		if len(as) == 0 || len(bs) == 0 {
			break
		}
		bestGain := int(-1 << 30)
		var bestA, bestB int
		for _, a := range as {
			for _, b := range bs {
				gn := d[a] + d[b] - 2*crossW(a, b)
				if gn > bestGain {
					bestGain, bestA, bestB = gn, a, b
				}
			}
		}
		a, b := bestA, bestB
		locked[a], locked[b] = true, true
		cum += bestGain
		swaps = append(swaps, swap{a, b, bestGain})
		// Update D values as if a and b swapped sides.
		for _, e := range adj[a] {
			if e.to == b || locked[e.to] {
				continue
			}
			if side[e.to] == side[a] {
				bump(e.to, 2*e.w)
			} else {
				bump(e.to, -2*e.w)
			}
		}
		for _, e := range adj[b] {
			if e.to == a || locked[e.to] {
				continue
			}
			if side[e.to] == side[b] {
				bump(e.to, 2*e.w)
			} else {
				bump(e.to, -2*e.w)
			}
		}
		side[a], side[b] = side[b], side[a]
		if cum > bestCum {
			bestCum, bestIdx = cum, len(swaps)-1
		}
	}
	// Revert swaps beyond the best prefix.
	for i := len(swaps) - 1; i > bestIdx; i-- {
		a, b := swaps[i].a, swaps[i].b
		side[a], side[b] = side[b], side[a]
	}
	return bestCum
}
