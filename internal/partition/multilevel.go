package partition

import (
	"math/rand"

	"repro/internal/circuit"
)

// Multilevel implements multilevel min-cut partitioning: the hypergraph is
// coarsened by repeated heavy-edge matching until it is small, the
// coarsest graph is split with FM, and the split is projected back up with
// an FM refinement pass at every level. This is the scheme the follow-up
// logic-simulation partitioning literature adopted from physical design
// (and the engine inside tools like hMETIS): coarsening lets the
// refinement escape the local minima a flat FM pass gets stuck in, at
// essentially FM cost.
//
// Balance bound: as for FM, each bisection is tolerance-constrained but
// the moves are whole coarse clusters, so deviations are coarser-grained;
// the property suite asserts imbalance <= 1.40 for the generator corpus.
func Multilevel(c *circuit.Circuit, k int, w Weights, seed int64) *Partition {
	return recursiveBisect(c, k, w, seed, mlBisect)
}

// coarseLevel captures one step of the coarsening hierarchy.
type coarseLevel struct {
	g *localGraph
	// fineToCoarse maps each finer-level vertex to its coarse vertex.
	fineToCoarse []int
}

// mlBisect runs coarsen / initial-partition / uncoarsen+refine.
func mlBisect(g *localGraph, side []uint8, targetA float64, rng *rand.Rand) {
	if len(g.nets) == 0 {
		return
	}
	const coarsestSize = 96

	// Coarsening phase.
	levels := []coarseLevel{}
	cur := g
	for len(cur.verts) > coarsestSize {
		next, mapping, shrunk := coarsen(cur, rng)
		if !shrunk {
			break
		}
		levels = append(levels, coarseLevel{g: cur, fineToCoarse: mapping})
		cur = next
	}

	// Initial partition of the coarsest graph.
	coarseSide := initialSplit(cur, targetA, rng)
	fmBisect(cur, coarseSide, targetA, rng)

	// Uncoarsening phase: project and refine at each finer level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fineSide := make([]uint8, len(lv.g.verts))
		for v := range fineSide {
			fineSide[v] = coarseSide[lv.fineToCoarse[v]]
		}
		fmBisect(lv.g, fineSide, targetA, rng)
		coarseSide = fineSide
	}
	copy(side, coarseSide)
}

// coarsen contracts heavy-edge matched vertex pairs into a smaller
// hypergraph. It returns the coarse graph, the fine-to-coarse vertex map,
// and whether any contraction happened.
func coarsen(g *localGraph, rng *rand.Rand) (*localGraph, []int, bool) {
	n := len(g.verts)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Greedy matching in random order: pair each vertex with an unmatched
	// neighbour sharing a net (preferring small nets — "heavier" implied
	// connectivity).
	order := rng.Perm(n)
	matched := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestNet := -1, 1<<30
		for _, netID := range g.netsOf[v] {
			cells := g.nets[netID]
			if len(cells) >= bestNet {
				continue
			}
			for _, u := range cells {
				if u != v && match[u] < 0 {
					best, bestNet = u, len(cells)
					break
				}
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			matched++
		}
	}
	if matched == 0 {
		return nil, nil, false
	}

	// Assign coarse ids.
	fineToCoarse := make([]int, n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	coarseN := 0
	for v := 0; v < n; v++ {
		if fineToCoarse[v] >= 0 {
			continue
		}
		fineToCoarse[v] = coarseN
		if m := match[v]; m >= 0 {
			fineToCoarse[m] = coarseN
		}
		coarseN++
	}

	// Build the coarse hypergraph directly (no circuit backing): weights
	// sum over merged vertices; nets map through, dropping collapsed ones.
	cg := &localGraph{
		verts:  make([]circuit.GateID, coarseN),
		w:      make([]float64, coarseN),
		netsOf: make([][]int, coarseN),
	}
	for v := 0; v < n; v++ {
		cv := fineToCoarse[v]
		cg.w[cv] += g.w[v]
		if cg.w[cv] > cg.maxW {
			cg.maxW = cg.w[cv]
		}
	}
	cg.total = g.total
	seen := map[int]bool{}
	for _, cells := range g.nets {
		clear(seen)
		mapped := make([]int, 0, len(cells))
		for _, u := range cells {
			cu := fineToCoarse[u]
			if !seen[cu] {
				seen[cu] = true
				mapped = append(mapped, cu)
			}
		}
		if len(mapped) < 2 {
			continue
		}
		netID := len(cg.nets)
		cg.nets = append(cg.nets, mapped)
		for _, cu := range mapped {
			cg.netsOf[cu] = append(cg.netsOf[cu], netID)
		}
	}
	return cg, fineToCoarse, true
}
