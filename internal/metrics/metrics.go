// Package metrics is the unified instrumentation layer every simulation
// engine reports into: typed work counters, per-LP histograms, run-level
// gauges, and a machine-readable report.
//
// The paper's central evidence (Figure 1, Section V) is built entirely on
// per-LP work accounting — events, null messages, rollbacks, barrier
// waits — so those counters are first-class here rather than ad-hoc
// per-engine structs. The design keeps the hot path allocation-free: an
// engine asks its Sink once, at setup, for one *LPBlock per logical
// process, and every subsequent increment is a plain add on a struct field
// the LP goroutine exclusively owns. No atomics, no maps, no interface
// calls per event. Aggregation (totals, reports, cost-model pricing)
// happens once, after the run.
//
// Ownership rules:
//   - LP(i) is called during single-threaded engine setup only.
//   - Each *LPBlock is written by exactly one goroutine at a time (the
//     goroutine running that LP).
//   - Globals() fields are written by the run's coordinator/main goroutine.
//   - SetGauge and SetLabel are cold-path and must not race with readers;
//     engines call them after their worker goroutines have joined.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter identifies one of the canonical work counters. The enum exists
// for generic iteration (reports, totals); hot paths increment the named
// LPCounters fields directly.
type Counter uint8

// The canonical counters. Their meanings match the paper's work model:
// evaluations and queue operations are useful work, messages/nulls/
// anti-messages/rollbacks/state saving/blocking are the synchronization
// overheads the algorithms trade against each other.
const (
	Evaluations Counter = iota
	EventsApplied
	EventsScheduled
	MessagesSent
	MessagesRecv
	NullsSent
	NullsRecv
	Rollbacks
	EventsRolledBack
	AntiMessagesSent
	AntiMessagesRecv
	StateSaves
	StateSavedWords
	Steps
	Blocks
	NullsFolded
	PoolHits
	PoolMisses

	NumCounters
)

var counterNames = [NumCounters]string{
	"evaluations",
	"events_applied",
	"events_scheduled",
	"messages_sent",
	"messages_recv",
	"nulls_sent",
	"nulls_recv",
	"rollbacks",
	"events_rolled_back",
	"anti_messages_sent",
	"anti_messages_recv",
	"state_saves",
	"state_saved_words",
	"steps",
	"blocks",
	"nulls_folded",
	"pool_hits",
	"pool_misses",
}

// String returns the counter's stable report key.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// LPCounters is one logical process's counter block. Fields are exported
// and incremented directly by the owning goroutine — the zero-allocation
// hot path. The enum-indexed accessors serve the cold aggregation path.
type LPCounters struct {
	// Evaluations is the number of gate evaluations (including Time Warp
	// re-executions after rollback).
	Evaluations uint64
	// EventsApplied is the number of net-change events consumed.
	EventsApplied uint64
	// EventsScheduled is the number of future events enqueued.
	EventsScheduled uint64
	// MessagesSent / MessagesRecv count cross-LP value messages. Sent can
	// exceed recv: conservative runs terminate with messages still in
	// flight, and lazy cancellation counts a regenerated duplicate as sent
	// while suppressing its transmission (the receiver's copy stays valid).
	MessagesSent uint64
	MessagesRecv uint64
	// NullsSent / NullsRecv count conservative null messages.
	NullsSent uint64
	NullsRecv uint64
	// Rollbacks is the number of rollback episodes (Time Warp).
	Rollbacks uint64
	// EventsRolledBack counts events undone by rollbacks.
	EventsRolledBack uint64
	// AntiMessagesSent / AntiMessagesRecv count cancellation messages.
	AntiMessagesSent uint64
	AntiMessagesRecv uint64
	// StateSaves counts state-saving operations; StateSavedWords the
	// volume saved (in value-words), which differs sharply between full
	// copy and incremental saving.
	StateSaves      uint64
	StateSavedWords uint64
	// Steps is the number of timestep executions (including re-executions).
	Steps uint64
	// Blocks counts blocked-wait episodes: the LP had events it was not
	// allowed to process (conservative input-waiting rule) or nothing to
	// do, and parked until a message arrived.
	Blocks uint64
	// NullsFolded counts null messages superseded inside a send batch
	// before transmission: the conservative engine still accounts them as
	// sent (protocol work happened), but only the strongest promise per
	// flush reaches the wire, so transmitted nulls = NullsSent − NullsFolded.
	NullsFolded uint64
	// PoolHits / PoolMisses count hot-path record acquisitions served from
	// an engine free-list versus falling through to the allocator. A warm
	// run should be nearly all hits; misses measure pool warm-up and
	// high-water growth.
	PoolHits   uint64
	PoolMisses uint64
}

// Get reads one counter by enum.
func (s *LPCounters) Get(c Counter) uint64 {
	switch c {
	case Evaluations:
		return s.Evaluations
	case EventsApplied:
		return s.EventsApplied
	case EventsScheduled:
		return s.EventsScheduled
	case MessagesSent:
		return s.MessagesSent
	case MessagesRecv:
		return s.MessagesRecv
	case NullsSent:
		return s.NullsSent
	case NullsRecv:
		return s.NullsRecv
	case Rollbacks:
		return s.Rollbacks
	case EventsRolledBack:
		return s.EventsRolledBack
	case AntiMessagesSent:
		return s.AntiMessagesSent
	case AntiMessagesRecv:
		return s.AntiMessagesRecv
	case StateSaves:
		return s.StateSaves
	case StateSavedWords:
		return s.StateSavedWords
	case Steps:
		return s.Steps
	case Blocks:
		return s.Blocks
	case NullsFolded:
		return s.NullsFolded
	case PoolHits:
		return s.PoolHits
	case PoolMisses:
		return s.PoolMisses
	}
	return 0
}

// Add accumulates other into s.
func (s *LPCounters) Add(other LPCounters) {
	s.Evaluations += other.Evaluations
	s.EventsApplied += other.EventsApplied
	s.EventsScheduled += other.EventsScheduled
	s.MessagesSent += other.MessagesSent
	s.MessagesRecv += other.MessagesRecv
	s.NullsSent += other.NullsSent
	s.NullsRecv += other.NullsRecv
	s.Rollbacks += other.Rollbacks
	s.EventsRolledBack += other.EventsRolledBack
	s.AntiMessagesSent += other.AntiMessagesSent
	s.AntiMessagesRecv += other.AntiMessagesRecv
	s.StateSaves += other.StateSaves
	s.StateSavedWords += other.StateSavedWords
	s.Steps += other.Steps
	s.Blocks += other.Blocks
	s.NullsFolded += other.NullsFolded
	s.PoolHits += other.PoolHits
	s.PoolMisses += other.PoolMisses
}

// Each visits every counter in enum order.
func (s *LPCounters) Each(f func(Counter, uint64)) {
	for c := Counter(0); c < NumCounters; c++ {
		f(c, s.Get(c))
	}
}

// Map renders the block with stable report keys.
func (s *LPCounters) Map() map[string]uint64 {
	m := make(map[string]uint64, NumCounters)
	s.Each(func(c Counter, v uint64) { m[c.String()] = v })
	return m
}

// Hist identifies a per-LP histogram.
type Hist uint8

// The per-LP histograms.
const (
	// HistStepEvents is the number of events consumed per executed
	// timestep — the event simultaneity the paper's parallelism arguments
	// depend on.
	HistStepEvents Hist = iota
	// HistRollbackDepth is the number of events undone per rollback
	// episode (Time Warp).
	HistRollbackDepth

	NumHists
)

var histNames = [NumHists]string{
	"step_events",
	"rollback_depth",
}

// String returns the histogram's stable report key.
func (h Hist) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return fmt.Sprintf("hist(%d)", uint8(h))
}

// Histogram counts uint64 observations in power-of-two buckets: bucket 0
// holds zeros, bucket k holds values in [2^(k-1), 2^k). Observation is a
// bit-length, two adds and a compare — cheap enough for per-step hot
// paths, and allocation-free.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count, Sum, and Max report the aggregate moments.
func (h *Histogram) Count() uint64 { return h.count }
func (h *Histogram) Sum() uint64   { return h.sum }
func (h *Histogram) Max() uint64   { return h.max }

// Mean reports the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// merge accumulates other into h.
func (h *Histogram) merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Buckets returns the non-empty buckets as (inclusive upper bound, count)
// pairs in increasing bound order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		hi := uint64(0)
		if i > 0 {
			hi = 1<<uint(i) - 1
		}
		out = append(out, Bucket{Hi: hi, Count: n})
	}
	return out
}

// Bucket is one histogram bucket: Count observations <= Hi (and above the
// previous bucket's bound).
type Bucket struct {
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// LPBlock is everything one logical process records: the counter block
// plus its histograms. Engines embed the counters, so `blk.Evaluations++`
// is the whole hot path.
type LPBlock struct {
	LPCounters
	hists [NumHists]Histogram
}

// Hist returns the block's histogram for direct observation.
func (b *LPBlock) Hist(h Hist) *Histogram { return &b.hists[h] }

// Globals are the run-level counters owned by the engine's coordinator or
// main goroutine.
type Globals struct {
	// Barriers counts global barrier episodes (synchronous engines).
	Barriers uint64
	// GVTRounds counts global-virtual-time computations (optimistic
	// engines) and quiescence-detection rounds (deadlock recovery).
	GVTRounds uint64
	// ModeledCriticalNs is the engine-computed critical path in model
	// nanoseconds (sum over steps of the busiest LP's step work), for
	// engines that track per-step maxima.
	ModeledCriticalNs float64
	// WallNs is the measured host wall-clock time of the run.
	WallNs int64
}

// Sink is what an engine needs from the instrumentation layer. *Registry
// implements it; tests may substitute their own.
type Sink interface {
	// LP returns logical process i's block, growing the registry as
	// needed. Call during single-threaded setup only.
	LP(i int) *LPBlock
	// NumLPs reports how many blocks have been handed out.
	NumLPs() int
	// Globals returns the run-level counter block.
	Globals() *Globals
	// SetGauge records a named run-level measurement (cold path).
	SetGauge(name string, v float64)
	// PProfEnabled reports whether goroutine pprof labels should be set.
	PProfEnabled() bool
}

// Registry is the per-run metrics store: one LPBlock per logical process,
// the run globals, gauges, and identifying labels.
type Registry struct {
	engine string
	labels map[string]string
	lps    []*LPBlock
	global Globals
	gauges map[string]float64
	pprof  bool
}

// NewRegistry creates a registry for the named engine.
func NewRegistry(engine string) *Registry {
	return &Registry{engine: engine}
}

// Engine reports the engine name the registry was created for.
func (r *Registry) Engine() string { return r.engine }

// LP returns (allocating on first use) logical process i's block.
func (r *Registry) LP(i int) *LPBlock {
	for len(r.lps) <= i {
		r.lps = append(r.lps, &LPBlock{})
	}
	return r.lps[i]
}

// NumLPs reports the number of allocated LP blocks.
func (r *Registry) NumLPs() int { return len(r.lps) }

// Globals returns the run-level counters.
func (r *Registry) Globals() *Globals { return &r.global }

// SetGauge records a named run-level measurement.
func (r *Registry) SetGauge(name string, v float64) {
	if r.gauges == nil {
		r.gauges = map[string]float64{}
	}
	r.gauges[name] = v
}

// SetLabel attaches an identifying key=value to the run report.
func (r *Registry) SetLabel(key, value string) {
	if r.labels == nil {
		r.labels = map[string]string{}
	}
	r.labels[key] = value
}

// EnablePProf turns on goroutine pprof labeling for engines using this
// registry.
func (r *Registry) EnablePProf() { r.pprof = true }

// PProfEnabled implements Sink.
func (r *Registry) PProfEnabled() bool { return r.pprof }

// Absorb folds another registry into r: per-LP counters and histograms
// add block-wise (growing r as needed), globals accumulate, and the
// other registry's gauges and labels overwrite same-named entries.
// Cold path; call between runs, never while either registry's
// goroutines are live. The adaptive supervisor uses it to aggregate
// per-segment registries into one whole-run report.
func (r *Registry) Absorb(o *Registry) {
	for i, b := range o.lps {
		dst := r.LP(i)
		dst.LPCounters.Add(b.LPCounters)
		for h := range b.hists {
			dst.hists[h].merge(&b.hists[h])
		}
	}
	r.global.Barriers += o.global.Barriers
	r.global.GVTRounds += o.global.GVTRounds
	r.global.ModeledCriticalNs += o.global.ModeledCriticalNs
	r.global.WallNs += o.global.WallNs
	for k, v := range o.gauges {
		r.SetGauge(k, v)
	}
	for k, v := range o.labels {
		r.SetLabel(k, v)
	}
}

// SinkTotals sums a sink's per-LP counter blocks — the registry-free
// aggregation path for engines that only hold the Sink interface.
// Cold path; the caller must ensure the LP goroutines' writes are
// visible (joined, or frozen behind a synchronization edge).
func SinkTotals(s Sink) LPCounters {
	var t LPCounters
	for i := 0; i < s.NumLPs(); i++ {
		t.Add(s.LP(i).LPCounters)
	}
	return t
}

// Totals sums the per-LP counter blocks.
func (r *Registry) Totals() LPCounters {
	var t LPCounters
	for _, b := range r.lps {
		t.Add(b.LPCounters)
	}
	return t
}

// ReportSchema identifies the JSON layout of Report; bump on breaking
// changes.
const ReportSchema = "parsim-metrics/v1"

// Report is the stable machine-readable outcome of a run, built from a
// Registry. cmd/parsim emits it with --metrics-out and cmd/experiments
// derives its table rows from it.
type Report struct {
	Schema  string            `json:"schema"`
	Engine  string            `json:"engine"`
	Labels  map[string]string `json:"labels,omitempty"`
	LPs     []LPReport        `json:"lps"`
	Totals  map[string]uint64 `json:"totals"`
	Globals GlobalsReport     `json:"globals"`
	Gauges  map[string]float64 `json:"gauges,omitempty"`
}

// LPReport is one logical process's share of the report.
type LPReport struct {
	LP         int                   `json:"lp"`
	Counters   map[string]uint64     `json:"counters"`
	Histograms map[string]HistReport `json:"histograms,omitempty"`
}

// HistReport summarizes one histogram.
type HistReport struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// GlobalsReport is the run-level counter section.
type GlobalsReport struct {
	Barriers          uint64  `json:"barriers"`
	GVTRounds         uint64  `json:"gvt_rounds"`
	ModeledCriticalNs float64 `json:"modeled_critical_ns"`
	WallNs            int64   `json:"wall_ns"`
}

// Report snapshots the registry. Call after the run's goroutines have
// joined.
func (r *Registry) Report() *Report {
	rep := &Report{
		Schema: ReportSchema,
		Engine: r.engine,
		Totals: map[string]uint64{},
		Globals: GlobalsReport{
			Barriers:          r.global.Barriers,
			GVTRounds:         r.global.GVTRounds,
			ModeledCriticalNs: r.global.ModeledCriticalNs,
			WallNs:            r.global.WallNs,
		},
	}
	if len(r.labels) > 0 {
		rep.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			rep.Labels[k] = v
		}
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			rep.Gauges[k] = v
		}
	}
	tot := r.Totals()
	tot.Each(func(c Counter, v uint64) { rep.Totals[c.String()] = v })
	for i, b := range r.lps {
		lr := LPReport{LP: i, Counters: b.LPCounters.Map()}
		for h := Hist(0); h < NumHists; h++ {
			hg := &b.hists[h]
			if hg.Count() == 0 {
				continue
			}
			if lr.Histograms == nil {
				lr.Histograms = map[string]HistReport{}
			}
			lr.Histograms[h.String()] = HistReport{
				Count: hg.Count(), Sum: hg.Sum(), Max: hg.Max(), Buckets: hg.Buckets(),
			}
		}
		rep.LPs = append(rep.LPs, lr)
	}
	return rep
}

// Total reads one counter total by enum from a built report — the typed
// access path for in-process consumers like cmd/experiments.
func (r *Report) Total(c Counter) uint64 { return r.Totals[c.String()] }

// Counters rebuilds the report's totals as a typed counter block, so
// in-process consumers work from the same stable document external
// tooling reads.
func (r *Report) Counters() LPCounters {
	var t LPCounters
	for c := Counter(0); c < NumCounters; c++ {
		t.set(c, r.Totals[c.String()])
	}
	return t
}

// set writes one counter by enum (cold path; mirrors Get).
func (s *LPCounters) set(c Counter, v uint64) {
	switch c {
	case Evaluations:
		s.Evaluations = v
	case EventsApplied:
		s.EventsApplied = v
	case EventsScheduled:
		s.EventsScheduled = v
	case MessagesSent:
		s.MessagesSent = v
	case MessagesRecv:
		s.MessagesRecv = v
	case NullsSent:
		s.NullsSent = v
	case NullsRecv:
		s.NullsRecv = v
	case Rollbacks:
		s.Rollbacks = v
	case EventsRolledBack:
		s.EventsRolledBack = v
	case AntiMessagesSent:
		s.AntiMessagesSent = v
	case AntiMessagesRecv:
		s.AntiMessagesRecv = v
	case StateSaves:
		s.StateSaves = v
	case StateSavedWords:
		s.StateSavedWords = v
	case Steps:
		s.Steps = v
	case Blocks:
		s.Blocks = v
	case NullsFolded:
		s.NullsFolded = v
	case PoolHits:
		s.PoolHits = v
	case PoolMisses:
		s.PoolMisses = v
	}
}

// MergedHist sums one histogram across every LP of a built registry.
func (r *Registry) MergedHist(h Hist) Histogram {
	var out Histogram
	for _, b := range r.lps {
		out.merge(&b.hists[h])
	}
	return out
}

// WriteJSON emits the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary renders the report's headline counters in a stable one-line
// form for logs and test failure messages.
func (rep *Report) Summary() string {
	keys := make([]string, 0, len(rep.Totals))
	for k, v := range rep.Totals {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := fmt.Sprintf("engine=%s lps=%d", rep.Engine, len(rep.LPs))
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%d", k, rep.Totals[k])
	}
	return out
}
