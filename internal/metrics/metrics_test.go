package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterRoundTrip(t *testing.T) {
	var s LPCounters
	for c := Counter(0); c < NumCounters; c++ {
		if s.Get(c) != 0 {
			t.Fatalf("zero block: %v = %d", c, s.Get(c))
		}
	}
	s.Evaluations = 1
	s.EventsApplied = 2
	s.EventsScheduled = 3
	s.MessagesSent = 4
	s.MessagesRecv = 5
	s.NullsSent = 6
	s.NullsRecv = 7
	s.Rollbacks = 8
	s.EventsRolledBack = 9
	s.AntiMessagesSent = 10
	s.AntiMessagesRecv = 11
	s.StateSaves = 12
	s.StateSavedWords = 13
	s.Steps = 14
	s.Blocks = 15
	s.NullsFolded = 16
	s.PoolHits = 17
	s.PoolMisses = 18
	// Get must agree with the named fields for every enum value: each
	// counter was set to its ordinal+1.
	for c := Counter(0); c < NumCounters; c++ {
		if got := s.Get(c); got != uint64(c)+1 {
			t.Errorf("Get(%v) = %d, want %d", c, got, uint64(c)+1)
		}
	}
	var sum LPCounters
	sum.Add(s)
	sum.Add(s)
	s.Each(func(c Counter, v uint64) {
		if sum.Get(c) != 2*v {
			t.Errorf("Add: %v = %d, want %d", c, sum.Get(c), 2*v)
		}
	})
	names := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if names[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		names[n] = true
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 900} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 911 || h.Max() != 900 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	want := map[uint64]uint64{0: 1, 1: 2, 3: 2, 7: 1, 1023: 1}
	bs := h.Buckets()
	if len(bs) != len(want) {
		t.Fatalf("buckets = %v, want bounds %v", bs, want)
	}
	for _, b := range bs {
		if want[b.Hi] != b.Count {
			t.Errorf("bucket hi=%d count=%d, want %d", b.Hi, b.Count, want[b.Hi])
		}
	}
	if m := h.Mean(); m < 130 || m > 131 {
		t.Errorf("mean = %v", m)
	}
}

func TestRegistryReport(t *testing.T) {
	r := NewRegistry("cmb")
	r.SetLabel("circuit", "dag300")
	r.SetGauge("migrations", 3)
	a, b := r.LP(0), r.LP(1)
	a.Evaluations = 10
	a.NullsSent = 4
	a.Hist(HistStepEvents).Observe(2)
	b.Evaluations = 5
	b.NullsRecv = 4
	g := r.Globals()
	g.Barriers = 7
	g.GVTRounds = 2
	g.WallNs = 1000

	if r.NumLPs() != 2 {
		t.Fatalf("NumLPs = %d", r.NumLPs())
	}
	if tot := r.Totals(); tot.Evaluations != 15 || tot.NullsSent != 4 {
		t.Fatalf("totals = %+v", tot)
	}

	rep := r.Report()
	if rep.Schema != ReportSchema || rep.Engine != "cmb" {
		t.Fatalf("header = %q %q", rep.Schema, rep.Engine)
	}
	if rep.Total(Evaluations) != 15 || rep.Total(NullsRecv) != 4 {
		t.Fatalf("typed totals: evals=%d nullsRecv=%d", rep.Total(Evaluations), rep.Total(NullsRecv))
	}
	if rep.Globals.Barriers != 7 || rep.Globals.GVTRounds != 2 {
		t.Fatalf("globals = %+v", rep.Globals)
	}
	if rep.LPs[0].Histograms["step_events"].Count != 1 {
		t.Fatalf("lp0 histograms = %+v", rep.LPs[0].Histograms)
	}
	if len(rep.LPs[1].Histograms) != 0 {
		t.Fatalf("lp1 histograms should be empty: %+v", rep.LPs[1].Histograms)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Total(Evaluations) != 15 || back.Labels["circuit"] != "dag300" || back.Gauges["migrations"] != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	if s := rep.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestMergedHist(t *testing.T) {
	r := NewRegistry("tw")
	r.LP(0).Hist(HistRollbackDepth).Observe(8)
	r.LP(1).Hist(HistRollbackDepth).Observe(16)
	m := r.MergedHist(HistRollbackDepth)
	if m.Count() != 2 || m.Sum() != 24 || m.Max() != 16 {
		t.Fatalf("merged = count %d sum %d max %d", m.Count(), m.Sum(), m.Max())
	}
}

func TestPProfDo(t *testing.T) {
	r := NewRegistry("seq")
	ran := false
	Do(r, "seq", 0, "run", func() { ran = true }) // disabled: direct call
	if !ran {
		t.Fatal("f not called with labels disabled")
	}
	r.EnablePProf()
	ran = false
	Do(r, "seq", 3, "run", func() { ran = true }) // labeled path
	if !ran {
		t.Fatal("f not called with labels enabled")
	}
	ran = false
	Do(r, "seq", -1, "coordinate", func() { ran = true }) // role labels
	if !ran {
		t.Fatal("f not called with role labels")
	}
	Do(nil, "seq", 0, "run", func() {}) // nil sink must not panic
}
