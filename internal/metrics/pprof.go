package metrics

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// Do runs f with goroutine pprof labels attributing CPU samples to
// engine/lp/phase, so `go tool pprof -tags` splits a profile by logical
// process and synchronization role. When the sink has labeling disabled
// (the default) it calls f directly — label maps cost an allocation per
// goroutine, which the fork-join engines would pay per phase.
//
// lp < 0 labels a non-LP role (coordinator, main loop) with the phase
// only.
func Do(m Sink, engine string, lp int, phase string, f func()) {
	if m == nil || !m.PProfEnabled() {
		f()
		return
	}
	var labels pprof.LabelSet
	if lp >= 0 {
		labels = pprof.Labels("engine", engine, "lp", strconv.Itoa(lp), "phase", phase)
	} else {
		labels = pprof.Labels("engine", engine, "phase", phase)
	}
	pprof.Do(context.Background(), labels, func(context.Context) { f() })
}
