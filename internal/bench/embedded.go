package bench

import "repro/internal/circuit"

// C17 is the ISCAS-85 c17 benchmark, the canonical six-NAND example
// circuit, embedded for tests and quickstarts.
const C17 = `# c17 (ISCAS-85)
# 5 inputs, 2 outputs, 6 NAND gates
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// S27 is the ISCAS-89 s27 benchmark, the smallest standard sequential
// circuit (3 flip-flops), embedded for tests and quickstarts.
const S27 = `# s27 (ISCAS-89)
# 4 inputs, 1 output, 3 D-type flipflops, 2 inverters, 8 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// MustC17 parses the embedded c17 netlist; it panics only if the embedded
// text is corrupt, which the test suite rules out.
func MustC17() *circuit.Circuit {
	c, err := ReadString(C17)
	if err != nil {
		panic(err)
	}
	return c
}

// MustS27 parses the embedded s27 netlist.
func MustS27() *circuit.Circuit {
	c, err := ReadString(S27)
	if err != nil {
		panic(err)
	}
	return c
}
