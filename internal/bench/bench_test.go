package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/simtest"
)

func TestReadC17(t *testing.T) {
	c := bench.MustC17()
	st := c.ComputeStats()
	if st.Inputs != 5 || st.Outputs != 2 {
		t.Fatalf("c17 io = %d/%d", st.Inputs, st.Outputs)
	}
	if st.ByKind[circuit.Nand] != 6 {
		t.Fatalf("c17 NANDs = %d, want 6", st.ByKind[circuit.Nand])
	}
	if st.FlipFlops != 0 {
		t.Fatal("c17 has flip-flops")
	}
	// Functional check: c17's known truth behaviour for one vector.
	// With all inputs 0: 10=1, 11=1, 16=1, 19=1, 22=NAND(1,1)=0, 23=0.
	vals, err := simtest.Settle(c, map[string]logic.Value{
		"1": logic.Zero, "2": logic.Zero, "3": logic.Zero,
		"6": logic.Zero, "7": logic.Zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	g22, _ := c.ByName("22")
	g23, _ := c.ByName("23")
	if vals[g22] != logic.Zero || vals[g23] != logic.Zero {
		t.Fatalf("c17(0...0) = %v,%v want 0,0", vals[g22], vals[g23])
	}
}

func TestReadS27(t *testing.T) {
	c := bench.MustS27()
	st := c.ComputeStats()
	if st.FlipFlops != 3 {
		t.Fatalf("s27 FFs = %d, want 3", st.FlipFlops)
	}
	// The implicit clock was synthesized and every DFF uses it.
	clk, ok := c.ByName("CLK")
	if !ok {
		t.Fatal("no synthesized CLK input")
	}
	for id := range c.Gates {
		g := c.Gate(circuit.GateID(id))
		if g.Kind == circuit.DFF && g.Fanin[1] != clk {
			t.Fatalf("DFF %q not clocked by CLK", g.Name)
		}
	}
	if st.Inputs != 5 { // 4 declared + CLK
		t.Fatalf("s27 inputs = %d, want 5", st.Inputs)
	}
}

func TestForwardReferences(t *testing.T) {
	// G2 uses G3 before its definition.
	src := `INPUT(A)
OUTPUT(G2)
G2 = NOT(G3)
G3 = BUFF(A)
`
	c, err := bench.ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 4 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}

func TestDelayExtensionRoundTrip(t *testing.T) {
	src := `INPUT(A)
INPUT(B)
OUTPUT(Y)
Y = NAND(A, B)
#@ delay Y 7
`
	c, err := bench.ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := c.ByName("Y")
	if c.Gate(y).Delay != 7 {
		t.Fatalf("delay = %d, want 7", c.Gate(y).Delay)
	}
	out, err := bench.WriteString(c, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#@ delay Y 7") {
		t.Fatalf("delay annotation lost:\n%s", out)
	}
}

func TestRoundTripGeneratedCircuits(t *testing.T) {
	mk := []struct {
		name string
		c    func() (*circuit.Circuit, error)
	}{
		{"ripple", func() (*circuit.Circuit, error) { return gen.RippleAdder(6, gen.Fine(5, 1)) }},
		{"mul", func() (*circuit.Circuit, error) { return gen.ArrayMultiplier(4, gen.Unit) }},
		{"lfsr", func() (*circuit.Circuit, error) { return gen.LFSR(6, nil, gen.Unit) }},
		{"seq", func() (*circuit.Circuit, error) {
			return gen.RandomSeq(gen.RandomConfig{Gates: 120, Inputs: 6, Outputs: 4, Seed: 3, FFRatio: 0.2})
		}},
	}
	for _, m := range mk {
		orig, err := m.c()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		text, err := bench.WriteString(orig, m.name)
		if err != nil {
			t.Fatalf("%s write: %v", m.name, err)
		}
		back, err := bench.ReadString(text)
		if err != nil {
			t.Fatalf("%s reread: %v\n%s", m.name, err, text)
		}
		so, sb := orig.ComputeStats(), back.ComputeStats()
		if so.Outputs != sb.Outputs || so.FlipFlops != sb.FlipFlops {
			t.Fatalf("%s: stats changed: %+v vs %+v", m.name, so, sb)
		}
		// Gate population must survive modulo the clock input (generated
		// sequential circuits already have one named clk; the reader adds
		// CLK because .bench drops clock pins, so allow exactly that).
		extra := sb.Gates - so.Gates
		if extra != 0 && !(so.FlipFlops > 0 && extra == 1) {
			t.Fatalf("%s: gate count %d -> %d", m.name, so.Gates, sb.Gates)
		}
		// Every named original gate must exist with the same kind & delay.
		for id := range orig.Gates {
			g := orig.Gate(circuit.GateID(id))
			if g.Kind == circuit.Input || g.Kind == circuit.Output {
				continue
			}
			bid, ok := back.ByName(g.Name)
			if !ok {
				t.Fatalf("%s: gate %q lost", m.name, g.Name)
			}
			bg := back.Gate(bid)
			if bg.Kind != g.Kind || bg.Delay != g.Delay {
				t.Fatalf("%s: gate %q changed: %v/%d -> %v/%d", m.name, g.Name, g.Kind, g.Delay, bg.Kind, bg.Delay)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"INPUT A\n",                                // malformed INPUT
		"OUTPUT()\n",                               // empty OUTPUT name
		"G1 = FROB(A)\nINPUT(A)\n",                 // unknown op
		"INPUT(A)\nG1 = NOT(B)\n",                  // undefined signal
		"INPUT(A)\nINPUT(A)\n",                     // duplicate input
		"INPUT(A)\nG1 = NOT(A)\nG1 = NOT(A)\n",     // duplicate def
		"INPUT(A)\nOUTPUT(Q)\n",                    // undefined output
		"garbage here\n",                           // no '='
		"G1 = NOT A\nINPUT(A)\n",                   // missing parens
		"INPUT(A)\nG1 = DFF(A, A)\n",               // DFF arity
		"INPUT(A)\n#@ delay G1 xyz\nG1 = NOT(A)\n", // bad delay number
	}
	for i, src := range cases {
		if _, err := bench.ReadString(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestClockNameCollision(t *testing.T) {
	src := `INPUT(CLK)
INPUT(D)
OUTPUT(Q)
Q = DFF(D)
`
	c, err := bench.ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	// The declared CLK input is reused as the implicit clock — no second
	// clock is synthesized, which keeps write/read round trips stable.
	clk, ok := c.ByName("CLK")
	if !ok {
		t.Fatal("no CLK input")
	}
	if _, ok := c.ByName("__CLK"); ok {
		t.Fatal("fallback clock synthesized despite declared CLK")
	}
	q, _ := c.ByName("Q")
	if c.Gate(q).Fanin[1] != clk {
		t.Fatal("DFF not wired to the declared CLK")
	}
	// Round trip preserves the gate population exactly.
	text, err := bench.WriteString(c, "")
	if err != nil {
		t.Fatal(err)
	}
	back, err := bench.ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != c.NumGates() {
		t.Fatalf("round trip changed gate count %d -> %d", c.NumGates(), back.NumGates())
	}
}

func TestWriteRejectsExoticOutputs(t *testing.T) {
	// An Output marker is required; hand-build a circuit whose output gate
	// list is fine, but verify unwritable kinds are reported: none exist
	// currently, so instead check the writer emits RESOLVE/TRI extensions.
	b := circuit.NewBuilder()
	a := b.Input("A")
	en := b.Input("EN")
	tr := b.Gate(circuit.Tri, "T1", en, a)
	rs := b.Gate(circuit.Resolve, "R1", tr)
	b.Output("Y", rs)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := bench.WriteString(c, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T1 = TRI(EN, A)") || !strings.Contains(out, "R1 = RESOLVE(T1)") {
		t.Fatalf("extension ops missing:\n%s", out)
	}
	back, err := bench.ReadString(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != c.NumGates() {
		t.Fatal("extension round trip changed gate count")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# hello\n\n  \nINPUT(A)\n# mid\nOUTPUT(Y)\nY = BUFF(A)\n"
	if _, err := bench.ReadString(src); err != nil {
		t.Fatal(err)
	}
}
