// Package bench reads and writes ISCAS-style ".bench" netlists.
//
// The ISCAS-85 combinational and ISCAS-89 sequential benchmark circuits the
// paper discusses are distributed in this format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G23 = DFF(G10)
//
// The format has no clocks (ISCAS-89 assumes one implicit global clock), so
// the reader wires every DFF/DLATCH to a signal named CLK — reusing one
// the netlist declares, or synthesizing a primary input of that name.
// Signals may be referenced before they are defined; the reader resolves
// forward references in a second pass.
//
// Two documented extensions keep round-trips lossless for circuits this
// repository builds natively: extra gate operators (BUF, MUX, TRI, RESOLVE,
// DLATCH, CONST0/CONST1/CONSTX) and per-gate delay annotations of the form
// "#@ delay <name> <ticks>".
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// outputSuffix distinguishes the synthetic Output marker gate's name from
// the signal it observes.
const outputSuffix = "$out"

// clkName is the synthesized clock input for DFF/DLATCH gates.
const clkName = "CLK"

// kindByOp maps .bench operators to gate kinds.
var kindByOp = map[string]circuit.Kind{
	"AND":     circuit.And,
	"NAND":    circuit.Nand,
	"OR":      circuit.Or,
	"NOR":     circuit.Nor,
	"XOR":     circuit.Xor,
	"XNOR":    circuit.Xnor,
	"NOT":     circuit.Not,
	"BUFF":    circuit.Buf,
	"BUF":     circuit.Buf,
	"DFF":     circuit.DFF,
	"DLATCH":  circuit.DLatch,
	"MUX":     circuit.Mux2,
	"TRI":     circuit.Tri,
	"RESOLVE": circuit.Resolve,
	"CONST0":  circuit.Const0,
	"CONST1":  circuit.Const1,
	"CONSTX":  circuit.ConstX,
}

// opByKind is the inverse mapping used by the writer.
var opByKind = map[circuit.Kind]string{
	circuit.And:     "AND",
	circuit.Nand:    "NAND",
	circuit.Or:      "OR",
	circuit.Nor:     "NOR",
	circuit.Xor:     "XOR",
	circuit.Xnor:    "XNOR",
	circuit.Not:     "NOT",
	circuit.Buf:     "BUFF",
	circuit.DFF:     "DFF",
	circuit.DLatch:  "DLATCH",
	circuit.Mux2:    "MUX",
	circuit.Tri:     "TRI",
	circuit.Resolve: "RESOLVE",
	circuit.Const0:  "CONST0",
	circuit.Const1:  "CONST1",
	circuit.ConstX:  "CONSTX",
}

// def is one parsed gate definition awaiting wiring.
type def struct {
	name string
	op   string
	args []string
	line int
}

// Read parses a .bench netlist.
func Read(r io.Reader) (*circuit.Circuit, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var inputs, outputs []string
	var defs []def
	delays := map[string]circuit.Tick{}
	lineNo := 0

	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#@") {
			// Extension directive.
			fields := strings.Fields(strings.TrimPrefix(line, "#@"))
			if len(fields) == 3 && fields[0] == "delay" {
				d, err := strconv.ParseUint(fields[2], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bench: line %d: bad delay: %v", lineNo, err)
				}
				delays[fields[1]] = circuit.Tick(d)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			name, err := parseIODecl(line, "INPUT")
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(upper, "OUTPUT"):
			name, err := parseIODecl(line, "OUTPUT")
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			outputs = append(outputs, name)
		default:
			d, err := parseDef(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			d.line = lineNo
			defs = append(defs, d)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}

	b := circuit.NewBuilder()
	ids := map[string]circuit.GateID{}

	// The format has no clock pins, so sequential gates need an implicit
	// clock. A signal named CLK in the netlist (an input or a defined
	// gate) is reused — this is what keeps write/read round trips stable —
	// and otherwise a CLK primary input is synthesized.
	needsClk := false
	for _, d := range defs {
		if op := strings.ToUpper(d.op); op == "DFF" || op == "DLATCH" {
			needsClk = true
		}
	}
	declaresClk := false
	for _, in := range inputs {
		if in == clkName {
			declaresClk = true
		}
	}
	for _, d := range defs {
		if d.name == clkName {
			declaresClk = true
		}
	}
	if needsClk && !declaresClk {
		ids[clkName] = b.Input(clkName)
	}
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("bench: duplicate input %q", in)
		}
		ids[in] = b.Input(in)
	}
	// First pass: declare every defined gate with empty fanin.
	for _, d := range defs {
		kind, ok := kindByOp[strings.ToUpper(d.op)]
		if !ok {
			return nil, fmt.Errorf("bench: line %d: unknown operator %q", d.line, d.op)
		}
		if _, dup := ids[d.name]; dup {
			return nil, fmt.Errorf("bench: line %d: duplicate definition of %q", d.line, d.name)
		}
		delay := circuit.Tick(1)
		if dd, ok := delays[d.name]; ok {
			delay = dd
		}
		ids[d.name] = b.GateDelay(kind, d.name, delay)
	}
	// Second pass: wire fanin, resolving forward references.
	for _, d := range defs {
		id := ids[d.name]
		fanin := make([]circuit.GateID, 0, len(d.args)+1)
		for _, a := range d.args {
			src, ok := ids[a]
			if !ok {
				return nil, fmt.Errorf("bench: line %d: %q references undefined signal %q", d.line, d.name, a)
			}
			fanin = append(fanin, src)
		}
		switch strings.ToUpper(d.op) {
		case "DFF", "DLATCH":
			if len(fanin) != 1 {
				return nil, fmt.Errorf("bench: line %d: %s takes one input", d.line, d.op)
			}
			fanin = append(fanin, ids[clkName])
		}
		b.SetFanin(id, fanin)
	}
	for _, out := range outputs {
		src, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) references undefined signal", out)
		}
		b.Output(out+outputSuffix, src)
	}
	return b.Build()
}

// ReadString parses a .bench netlist held in a string.
func ReadString(s string) (*circuit.Circuit, error) {
	return Read(strings.NewReader(s))
}

// parseIODecl extracts the name from "INPUT(x)" / "OUTPUT(x)".
func parseIODecl(line, kw string) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s declaration %q", kw, line)
	}
	name := strings.TrimSpace(rest[1 : len(rest)-1])
	if name == "" {
		return "", fmt.Errorf("empty %s name", kw)
	}
	return name, nil
}

// parseDef parses "name = OP(a, b, ...)".
func parseDef(line string) (def, error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return def{}, fmt.Errorf("expected gate definition, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return def{}, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op := strings.TrimSpace(rhs[:open])
	argStr := rhs[open+1 : len(rhs)-1]
	var args []string
	for _, a := range strings.Split(argStr, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			args = append(args, a)
		}
	}
	if name == "" || op == "" {
		return def{}, fmt.Errorf("malformed definition %q", line)
	}
	return def{name: name, op: op, args: args}, nil
}

// Write emits a circuit as a .bench netlist, including the delay extension
// for any gate whose delay differs from 1. Output marker gates are folded
// back into OUTPUT declarations; sequential gates are written without
// their clock pin (the reader reattaches the CLK signal), so write/read
// round trips preserve the gate population exactly.
func Write(w io.Writer, c *circuit.Circuit, title string) error {
	bw := bufio.NewWriter(w)
	if title != "" {
		fmt.Fprintf(bw, "# %s\n", title)
	}
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.Inputs), len(c.Outputs), c.NumGates())
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gate(in).Name)
	}
	for _, out := range c.Outputs {
		g := c.Gate(out)
		if g.Kind != circuit.Output || len(g.Fanin) != 1 {
			return fmt.Errorf("bench: output gate %q is not a simple marker", g.Name)
		}
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gate(g.Fanin[0]).Name)
	}
	var delayLines []string
	for id := range c.Gates {
		g := c.Gate(circuit.GateID(id))
		switch g.Kind {
		case circuit.Input, circuit.Output:
			continue
		}
		op, ok := opByKind[g.Kind]
		if !ok {
			return fmt.Errorf("bench: gate %q has unwritable kind %v", g.Name, g.Kind)
		}
		args := make([]string, 0, len(g.Fanin))
		fanin := g.Fanin
		if g.Kind == circuit.DFF || g.Kind == circuit.DLatch {
			fanin = fanin[:1] // the implicit clock is not written
		}
		for _, f := range fanin {
			args = append(args, c.Gate(f).Name)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, op, strings.Join(args, ", "))
		if g.Delay != 1 {
			delayLines = append(delayLines, fmt.Sprintf("#@ delay %s %d", g.Name, g.Delay))
		}
	}
	sort.Strings(delayLines)
	for _, l := range delayLines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}

// WriteString renders a circuit as a .bench netlist string.
func WriteString(c *circuit.Circuit, title string) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, c, title); err != nil {
		return "", err
	}
	return sb.String(), nil
}
