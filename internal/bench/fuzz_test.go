package bench_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
)

// FuzzRead checks the .bench reader never panics and that every accepted
// netlist survives a write/read round trip with the same gate count.
// The seed corpus covers the syntax variants and known edge cases; run
// with `go test -fuzz=FuzzRead ./internal/bench` to explore further.
func FuzzRead(f *testing.F) {
	seeds := []string{
		bench.C17,
		bench.S27,
		"",
		"# only a comment\n",
		"INPUT(A)\nOUTPUT(Y)\nY = BUFF(A)\n",
		"INPUT(A)\nOUTPUT(Y)\nY = DFF(A)\n",
		"INPUT(A)\nG = NOT(A)\n#@ delay G 9\n",
		"INPUT(A)\nY = MUX(A, A, A)\nOUTPUT(Y)\n",
		"INPUT(\xff)\nOUTPUT(Y)\nY = BUFF(\xff)\n",
		"INPUT(A)\nY = AND(A,,A)\nOUTPUT(Y)\n",
		"INPUT(A)\nY=NOT(A)\nOUTPUT(Y)\n",
		strings.Repeat("INPUT(A)\n", 3),
		"G1 = NOT(G2)\nG2 = NOT(G1)\n", // combinational cycle
		"INPUT(A)\n#@ delay A 99999999999999999999\n",
		"OUTPUT(A)\nINPUT(A)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ReadString(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text, err := bench.WriteString(c, "fuzz")
		if err != nil {
			// Writing can only fail for unwritable gate kinds, which the
			// reader cannot produce.
			t.Fatalf("accepted netlist failed to write: %v", err)
		}
		back, err := bench.ReadString(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if back.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", c.NumGates(), back.NumGates())
		}
	})
}

// structure renders a circuit's full structural identity — per-gate name,
// kind, delay, and fanin names, plus the input and output lists — in a
// form independent of gate IDs, for round-trip comparison.
func structure(c *circuit.Circuit) string {
	var sb strings.Builder
	name := func(id circuit.GateID) string { return c.Gate(id).Name }
	for id := range c.Gates {
		g := c.Gate(circuit.GateID(id))
		fmt.Fprintf(&sb, "%s|%v@%d", g.Name, g.Kind, g.Delay)
		for _, f := range g.Fanin {
			sb.WriteByte(',')
			sb.WriteString(name(f))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("in:")
	for _, in := range c.Inputs {
		sb.WriteByte(' ')
		sb.WriteString(name(in))
	}
	sb.WriteString("\nout:")
	for _, out := range c.Outputs {
		sb.WriteByte(' ')
		sb.WriteString(name(out))
	}
	return sb.String()
}

// FuzzBenchRoundTrip is the strong round-trip property: any netlist the
// reader accepts must write, re-read, and write again to a byte-identical
// fixed point, with every gate's name, kind, delay, and wiring preserved.
// (FuzzRead above is the weaker never-panic property over the same space.)
func FuzzBenchRoundTrip(f *testing.F) {
	seeds := []string{
		bench.C17,
		bench.S27,
		"INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n",
		"INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n",
		"INPUT(CLK)\nINPUT(d)\nOUTPUT(q)\nq = DFF(d)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(fwd)\nfwd = BUFF(a)\n",
		"INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n#@ delay y 7\n",
		"INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(s, a, b)\n",
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = XOR(a, b)\ny = DLATCH(x)\n#@ delay x 3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ReadString(src)
		if err != nil {
			return // rejected input; nothing to round-trip
		}
		s1, err := bench.WriteString(c, "")
		if err != nil {
			t.Fatalf("accepted netlist not writable: %v\ninput: %q", err, src)
		}
		c2, err := bench.ReadString(s1)
		if err != nil {
			t.Fatalf("written netlist not readable: %v\nwritten:\n%s", err, s1)
		}
		s2, err := bench.WriteString(c2, "")
		if err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if s1 != s2 {
			t.Fatalf("write/read/write not a fixed point:\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
		if a, b := structure(c), structure(c2); a != b {
			t.Fatalf("structure changed across round trip:\nbefore:\n%s\nafter:\n%s", a, b)
		}
	})
}

// TestBenchRoundTripSeeds runs the strong round-trip property over the
// seed corpus directly, so plain `go test` exercises the contract too.
func TestBenchRoundTripSeeds(t *testing.T) {
	for _, src := range []string{bench.C17, bench.S27} {
		c, err := bench.ReadString(src)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := bench.WriteString(c, "")
		if err != nil {
			t.Fatal(err)
		}
		c2, err := bench.ReadString(s1)
		if err != nil {
			t.Fatalf("written form not readable: %v\n%s", err, s1)
		}
		if a, b := structure(c), structure(c2); a != b {
			t.Fatalf("structure changed:\nbefore:\n%s\nafter:\n%s", a, b)
		}
	}
}
