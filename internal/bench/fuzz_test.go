package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// FuzzRead checks the .bench reader never panics and that every accepted
// netlist survives a write/read round trip with the same gate count.
// The seed corpus covers the syntax variants and known edge cases; run
// with `go test -fuzz=FuzzRead ./internal/bench` to explore further.
func FuzzRead(f *testing.F) {
	seeds := []string{
		bench.C17,
		bench.S27,
		"",
		"# only a comment\n",
		"INPUT(A)\nOUTPUT(Y)\nY = BUFF(A)\n",
		"INPUT(A)\nOUTPUT(Y)\nY = DFF(A)\n",
		"INPUT(A)\nG = NOT(A)\n#@ delay G 9\n",
		"INPUT(A)\nY = MUX(A, A, A)\nOUTPUT(Y)\n",
		"INPUT(\xff)\nOUTPUT(Y)\nY = BUFF(\xff)\n",
		"INPUT(A)\nY = AND(A,,A)\nOUTPUT(Y)\n",
		"INPUT(A)\nY=NOT(A)\nOUTPUT(Y)\n",
		strings.Repeat("INPUT(A)\n", 3),
		"G1 = NOT(G2)\nG2 = NOT(G1)\n", // combinational cycle
		"INPUT(A)\n#@ delay A 99999999999999999999\n",
		"OUTPUT(A)\nINPUT(A)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := bench.ReadString(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text, err := bench.WriteString(c, "fuzz")
		if err != nil {
			// Writing can only fail for unwritable gate kinds, which the
			// reader cannot produce.
			t.Fatalf("accepted netlist failed to write: %v", err)
		}
		back, err := bench.ReadString(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if back.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", c.NumGates(), back.NumGates())
		}
	})
}
