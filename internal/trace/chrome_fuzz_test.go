package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/circuit"
)

// FuzzWriteChromeTrace drives the exporter with arbitrary span sequences —
// phases beyond the enum, negative starts/durations, extreme ticks, spans
// past the cap — and requires the output to always be valid JSON in the
// trace_event object form. Run `go test -fuzz=FuzzWriteChromeTrace
// ./internal/trace` to explore further.
func FuzzWriteChromeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19})
	big := make([]byte, 400)
	for i := range big {
		big[i] = byte(i * 7)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTracer("fuzz")
		tr.SetMaxSpans(64)
		shards := []*Shard{tr.Shard("lp 0"), tr.Shard("lp 1"), tr.Shard("")}
		// Decode the input as a sequence of 20-byte span records:
		// [shard, phase, 1]+start(8)+dur(8)+tick(2), with a counter sample
		// every fourth record.
		for i := 0; i+20 <= len(data); i += 20 {
			rec := data[i : i+20]
			sh := shards[int(rec[0])%len(shards)]
			start := int64(binary.LittleEndian.Uint64(rec[2:10]))
			dur := int64(binary.LittleEndian.Uint64(rec[10:18]))
			tick := circuit.Tick(binary.LittleEndian.Uint16(rec[18:20]))
			if rec[1]%8 == 7 {
				tick = NoTick
			}
			if rec[0]%4 == 3 {
				sh.Sample("v", float64(start)/3)
				continue
			}
			sh.addSpan(Span{
				Phase: Phase(rec[1]),
				Start: time.Duration(start),
				Dur:   time.Duration(dur),
				Tick:  tick,
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
		}
		// Metadata events (process + 3 threads) are always present.
		if len(doc.TraceEvents) < 4 {
			t.Fatalf("missing metadata events: %d", len(doc.TraceEvents))
		}
	})
}
