package trace

import (
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// WideSample is one committed whole-word change on a watched net: at Time
// at least one lane of Gate changed to the corresponding lane of Word.
// Unchanged lanes carry their previous value, so the word is always the
// complete 64-lane state of the net at Time.
type WideSample struct {
	Time circuit.Tick
	Gate circuit.GateID
	Word logic.Word
}

// WideWaveform is a canonical wide change history sorted by (Time, Gate).
type WideWaveform []WideSample

// WideRecorder accumulates wide samples in nondecreasing time order, the
// word-valued counterpart of Recorder.
type WideRecorder struct {
	samples []WideSample
}

// Record appends a whole-word change. Engines call it only when the new
// word differs from the net's previous committed word in at least one
// lane; per-lane deduplication happens at extraction time in Lane.
func (r *WideRecorder) Record(t circuit.Tick, g circuit.GateID, w logic.Word) {
	r.samples = append(r.samples, WideSample{t, g, w})
}

// TruncateFrom discards all samples with Time >= t (rollback support).
func (r *WideRecorder) TruncateFrom(t circuit.Tick) {
	i := sort.Search(len(r.samples), func(i int) bool { return r.samples[i].Time >= t })
	r.samples = r.samples[:i]
}

// Len returns the number of recorded wide samples.
func (r *WideRecorder) Len() int { return len(r.samples) }

// MergeWide combines wide recorder shards into one canonical waveform.
func MergeWide(recs ...*WideRecorder) WideWaveform {
	var n int
	for _, r := range recs {
		n += len(r.samples)
	}
	w := make(WideWaveform, 0, n)
	for _, r := range recs {
		w = append(w, r.samples...)
	}
	sort.Slice(w, func(i, j int) bool {
		if w[i].Time != w[j].Time {
			return w[i].Time < w[j].Time
		}
		return w[i].Gate < w[j].Gate
	})
	return w
}

// Lane extracts one lane of the wide waveform as a scalar waveform,
// keeping only genuine changes: a wide sample contributes a scalar sample
// for the lane exactly when that lane's value differs from the lane's
// previous value on the same net (starting from initial, the committed
// value of each net after time-zero initialization). The result is what a
// scalar engine driven with lane k's stimulus would have recorded, which
// is the conformance-suite oracle.
func (w WideWaveform) Lane(lane int, initial func(circuit.GateID) logic.Value) Waveform {
	cur := make(map[circuit.GateID]logic.Value)
	out := make(Waveform, 0, len(w))
	for _, s := range w {
		v := s.Word.Get(lane)
		prev, seen := cur[s.Gate]
		if !seen {
			prev = initial(s.Gate)
		}
		if v == prev {
			continue
		}
		cur[s.Gate] = v
		out = append(out, Sample{Time: s.Time, Gate: s.Gate, Value: v})
	}
	return out
}

// ValueAt reconstructs lane's value of gate g at time t (samples at
// exactly t included), starting from initial.
func (w WideWaveform) ValueAt(g circuit.GateID, lane int, t circuit.Tick, initial logic.Value) logic.Value {
	v := initial
	for _, s := range w {
		if s.Time > t {
			break
		}
		if s.Gate == g {
			v = s.Word.Get(lane)
		}
	}
	return v
}

// EqualWide reports whether two wide waveforms are identical.
func EqualWide(a, b WideWaveform) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
