package trace

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

func TestRecorderAndMerge(t *testing.T) {
	var a, b Recorder
	a.Record(1, 0, logic.One)
	a.Record(5, 0, logic.Zero)
	b.Record(1, 1, logic.One)
	b.Record(3, 1, logic.Zero)
	w := Merge(&a, &b)
	want := Waveform{
		{1, 0, logic.One}, {1, 1, logic.One},
		{3, 1, logic.Zero}, {5, 0, logic.Zero},
	}
	if !Equal(w, want) {
		t.Fatalf("merge = %v, want %v", w, want)
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("recorder lengths wrong")
	}
}

func TestTruncateFrom(t *testing.T) {
	var r Recorder
	r.Record(1, 0, logic.One)
	r.Record(3, 0, logic.Zero)
	r.Record(3, 1, logic.One)
	r.Record(7, 0, logic.One)
	r.TruncateFrom(3)
	w := Merge(&r)
	if len(w) != 1 || w[0].Time != 1 {
		t.Fatalf("truncate kept %v", w)
	}
	// Record again after truncation.
	r.Record(4, 1, logic.Zero)
	if r.Len() != 2 {
		t.Fatal("record after truncation broken")
	}
	// Truncating from before everything empties the recorder.
	r.TruncateFrom(0)
	if r.Len() != 0 {
		t.Fatal("full truncation broken")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := Waveform{{1, 0, logic.One}}
	b := Waveform{{1, 0, logic.Zero}}
	if Equal(a, b) {
		t.Fatal("unequal waveforms compare equal")
	}
	if Equal(a, a[:0]) {
		t.Fatal("different lengths compare equal")
	}
	if d := Diff(a, b, 5); d == "" || !strings.Contains(d, "want") {
		t.Fatalf("Diff = %q", d)
	}
	if d := Diff(a, a, 5); d != "" {
		t.Fatalf("Diff of equal waveforms = %q", d)
	}
	longer := Waveform{{1, 0, logic.One}, {2, 0, logic.Zero}}
	if d := Diff(a, longer, 5); !strings.Contains(d, "(none)") {
		t.Fatalf("Diff of mismatched lengths = %q", d)
	}
}

func TestValueAt(t *testing.T) {
	w := Waveform{
		{2, 0, logic.One},
		{4, 1, logic.One},
		{6, 0, logic.Zero},
	}
	if v := w.ValueAt(0, 1, logic.U); v != logic.U {
		t.Fatalf("before first change: %v", v)
	}
	if v := w.ValueAt(0, 2, logic.U); v != logic.One {
		t.Fatalf("at change: %v", v)
	}
	if v := w.ValueAt(0, 5, logic.U); v != logic.One {
		t.Fatalf("between changes: %v", v)
	}
	if v := w.ValueAt(0, 100, logic.U); v != logic.Zero {
		t.Fatalf("after last change: %v", v)
	}
	if v := w.ValueAt(1, 100, logic.U); v != logic.One {
		t.Fatalf("other gate: %v", v)
	}
}

func TestWriteVCD(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	n := b.Gate(circuit.Not, "n1", a)
	y := b.Output("y", n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := Waveform{
		{1, y, logic.One},
		{3, y, logic.Zero},
		{3, a, logic.One},
		{9, y, logic.Z},
		{12, y, logic.W},
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, c, []circuit.GateID{a, y}, w, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! a $end",
		"$var wire 1 \" y $end",
		"#1", "#3", "#9", "#12",
		"1\"", "0\"", "z\"", "x\"", "1!",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestVCDCodeUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		code := vcdCode(i)
		if seen[code] {
			t.Fatalf("duplicate VCD code %q at %d", code, i)
		}
		seen[code] = true
		for _, ch := range code {
			if ch < '!' || ch > '~' {
				t.Fatalf("code %q contains non-printable %q", code, ch)
			}
		}
	}
}
