package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilShardIsNoOp(t *testing.T) {
	var s *Shard
	start := s.Now()
	if !start.IsZero() {
		t.Fatal("nil shard Now should be zero")
	}
	s.Span(PhaseEvaluate, start, 0) // must not panic
	s.Sample("gvt", 1)
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatal("nil shard should report zero")
	}
	var tr *Tracer
	if sh := tr.Shard("x"); sh != nil {
		t.Fatal("nil tracer should hand out nil shards")
	}
	if tr.TotalSpans() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer totals should be zero")
	}
}

// decodeTrace parses the emitted JSON and returns the traceEvents array.
func decodeTrace(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b)
	}
	return doc.TraceEvents
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer("cmb")
	lp0 := tr.Shard("lp 0")
	lp1 := tr.Shard("lp 1")
	co := tr.Shard("coordinator")

	start := lp0.Now()
	lp0.Span(PhaseEvaluate, start, 42)
	lp0.Span(PhaseBlock, lp0.Now(), NoTick)
	lp1.Span(PhaseRollback, lp1.Now(), 7)
	co.Span(PhaseGVT, co.Now(), NoTick)
	co.Sample("gvt", 42)

	if tr.TotalSpans() != 4 {
		t.Fatalf("TotalSpans = %d", tr.TotalSpans())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())

	// 1 process_name + 3 thread_name + 4 spans + 1 counter sample.
	if len(evs) != 9 {
		t.Fatalf("got %d events:\n%s", len(evs), buf.String())
	}
	var phases, metas, counters int
	seenEval := false
	for _, ev := range evs {
		switch ev["ph"] {
		case "X":
			phases++
			if ev["name"] == "evaluate" {
				seenEval = true
				if args, ok := ev["args"].(map[string]any); !ok || args["t"] != float64(42) {
					t.Errorf("evaluate args = %v", ev["args"])
				}
			}
		case "M":
			metas++
		case "C":
			counters++
		}
	}
	if phases != 4 || metas != 4 || counters != 1 || !seenEval {
		t.Fatalf("phases=%d metas=%d counters=%d eval=%v", phases, metas, counters, seenEval)
	}
	if !strings.Contains(buf.String(), `"name":"cmb"`) {
		t.Error("process name missing")
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTracer("seq")
	tr.SetMaxSpans(3)
	sh := tr.Shard("lp 0")
	for i := 0; i < 10; i++ {
		sh.Span(PhaseEvaluate, sh.Now(), NoTick)
	}
	if sh.Len() != 3 || sh.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", sh.Len(), sh.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped_records") {
		t.Error("dropped_records metadata missing")
	}
	if tr.Dropped() != 7 {
		t.Fatalf("tracer dropped = %d", tr.Dropped())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < numPhases; p++ {
		n := p.String()
		if seen[n] {
			t.Fatalf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
	if Phase(200).String() != "phase(200)" {
		t.Fatalf("unknown phase = %q", Phase(200).String())
	}
}

func TestSpanTiming(t *testing.T) {
	tr := NewTracer("seq")
	sh := tr.Shard("lp 0")
	start := sh.Now()
	time.Sleep(2 * time.Millisecond)
	sh.Span(PhaseEvaluate, start, NoTick)
	sp := sh.spans[0]
	if sp.Dur < time.Millisecond {
		t.Fatalf("span duration = %v", sp.Dur)
	}
	if sp.Start < 0 {
		t.Fatalf("span start = %v", sp.Start)
	}
}
