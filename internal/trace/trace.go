// Package trace records and compares signal waveforms.
//
// Waveform equality against the sequential reference engine is the
// correctness oracle for every parallel engine in this repository: two
// engines that produce the same committed waveform on the watched nets are
// behaviorally indistinguishable. Recorders support truncation so that
// optimistic engines can unwind speculative history on rollback, and
// recorded shards from per-LP recorders merge into one canonical waveform.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Sample is one committed value change on a watched net.
type Sample struct {
	Time  circuit.Tick
	Gate  circuit.GateID
	Value logic.Value
}

// Waveform is a canonical change history: samples sorted by (Time, Gate).
type Waveform []Sample

// Recorder accumulates samples in nondecreasing time order. The zero value
// is ready to use. Recorders are not safe for concurrent use; parallel
// engines keep one per logical process and merge at the end.
type Recorder struct {
	samples []Sample
}

// Record appends a change. Callers record only genuine changes (the new
// value differs from the net's previous committed value); engines already
// track net values, so the recorder does not duplicate that bookkeeping.
func (r *Recorder) Record(t circuit.Tick, g circuit.GateID, v logic.Value) {
	r.samples = append(r.samples, Sample{t, g, v})
}

// TruncateFrom discards all samples with Time >= t. It is how Time Warp
// unwinds speculative output on rollback; samples are appended in
// nondecreasing time order, so truncation is a suffix cut.
func (r *Recorder) TruncateFrom(t circuit.Tick) {
	i := sort.Search(len(r.samples), func(i int) bool { return r.samples[i].Time >= t })
	r.samples = r.samples[:i]
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Merge combines recorder shards into one canonical waveform.
func Merge(recs ...*Recorder) Waveform {
	var n int
	for _, r := range recs {
		n += len(r.samples)
	}
	w := make(Waveform, 0, n)
	for _, r := range recs {
		w = append(w, r.samples...)
	}
	sort.Slice(w, func(i, j int) bool {
		if w[i].Time != w[j].Time {
			return w[i].Time < w[j].Time
		}
		return w[i].Gate < w[j].Gate
	})
	return w
}

// Equal reports whether two waveforms are identical.
func Equal(a, b Waveform) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between two waveforms, or "" when they are equal. It is the failure
// message generator for the cross-engine equivalence tests.
func Diff(want, got Waveform, limit int) string {
	if Equal(want, got) {
		return ""
	}
	out := fmt.Sprintf("waveforms differ: %d vs %d samples\n", len(want), len(got))
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	shown := 0
	for i := 0; i < n && shown < limit; i++ {
		var w, g string
		if i < len(want) {
			w = fmt.Sprintf("t=%d gate=%d %v", want[i].Time, want[i].Gate, want[i].Value)
		} else {
			w = "(none)"
		}
		if i < len(got) {
			g = fmt.Sprintf("t=%d gate=%d %v", got[i].Time, got[i].Gate, got[i].Value)
		} else {
			g = "(none)"
		}
		if w != g {
			out += fmt.Sprintf("  [%d] want %s, got %s\n", i, w, g)
			shown++
		}
	}
	return out
}

// ValueAt reconstructs the value of gate g at time t from the waveform,
// given the gate's initial value. Samples at exactly t are included.
func (w Waveform) ValueAt(g circuit.GateID, t circuit.Tick, initial logic.Value) logic.Value {
	v := initial
	for _, s := range w {
		if s.Time > t {
			break
		}
		if s.Gate == g {
			v = s.Value
		}
	}
	return v
}

// WriteVCD emits the waveform as a Value Change Dump, the standard
// interchange format for logic waveform viewers. watched lists the gates in
// the waveform; names come from the circuit.
func WriteVCD(w io.Writer, c *circuit.Circuit, watched []circuit.GateID, wf Waveform, timescale string) error {
	if timescale == "" {
		timescale = "1ns"
	}
	if _, err := fmt.Fprintf(w, "$date\n  (generated)\n$end\n$version\n  parsim\n$end\n$timescale %s $end\n$scope module top $end\n", timescale); err != nil {
		return err
	}
	ids := make(map[circuit.GateID]string, len(watched))
	for i, g := range watched {
		// VCD identifier codes: printable ASCII starting at '!'.
		code := vcdCode(i)
		ids[g] = code
		name := c.Gate(g).Name
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", code, name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}
	// Initial values: dump X for everything at time 0 unless the waveform
	// says otherwise below.
	if _, err := fmt.Fprint(w, "$dumpvars\n"); err != nil {
		return err
	}
	for _, g := range watched {
		if _, err := fmt.Fprintf(w, "x%s\n", ids[g]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$end\n"); err != nil {
		return err
	}
	var lastTime circuit.Tick
	timeWritten := false
	for _, s := range wf {
		code, ok := ids[s.Gate]
		if !ok {
			continue
		}
		if !timeWritten || s.Time != lastTime {
			if _, err := fmt.Fprintf(w, "#%d\n", s.Time); err != nil {
				return err
			}
			lastTime = s.Time
			timeWritten = true
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", vcdValue(s.Value), code); err != nil {
			return err
		}
	}
	return nil
}

// vcdCode builds a short printable identifier for variable index i.
func vcdCode(i int) string {
	const alphabet = 94 // printable ASCII from '!' (33) to '~' (126)
	var buf []byte
	for {
		buf = append(buf, byte('!'+i%alphabet))
		i /= alphabet
		if i == 0 {
			break
		}
		i--
	}
	return string(buf)
}

// vcdValue maps a logic value onto VCD's four-state alphabet.
func vcdValue(v logic.Value) string {
	switch {
	case v.IsHigh():
		return "1"
	case v.IsLow():
		return "0"
	case v == logic.Z:
		return "z"
	default:
		return "x"
	}
}
