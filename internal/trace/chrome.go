package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
)

// This file records per-LP lifecycle spans and exports them in the Chrome
// trace_event JSON format, loadable in chrome://tracing and Perfetto.
// Each logical process is one "thread" of the trace; spans mark the
// phases of the synchronization protocols — evaluation, blocked waits,
// rollbacks, barriers, GVT rounds — so the overhead structure the paper
// reasons about (Section V) is directly visible on a timeline.
//
// Recording is sharded: every LP goroutine appends to its own Shard with
// no locking, and a nil *Shard is a no-op so engines pay only a nil check
// when tracing is off. The span buffer is bounded; overflow increments a
// drop counter instead of growing without limit.

// Phase names a lifecycle span category.
type Phase uint8

// The span phases.
const (
	// PhaseEvaluate covers applying one timestep's events and evaluating
	// the affected gates.
	PhaseEvaluate Phase = iota
	// PhaseApply covers the event-application half of a barrier-split
	// timestep (synchronous engine phase A).
	PhaseApply
	// PhaseBlock covers a blocked wait for messages.
	PhaseBlock
	// PhaseRollback covers one Time Warp rollback episode.
	PhaseRollback
	// PhaseBarrier covers one global barrier (fork-join wait).
	PhaseBarrier
	// PhaseGVT covers one global-virtual-time or quiescence-detection
	// round.
	PhaseGVT
	// PhaseStateSave covers snapshot-based state saving.
	PhaseStateSave

	numPhases
)

var phaseNames = [numPhases]string{
	"evaluate", "apply", "block", "rollback", "barrier", "gvt", "state-save",
}

// String names the phase.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// NoTick marks a span with no meaningful simulated time.
const NoTick = circuit.Tick(^uint64(0))

// Span is one recorded duration on a shard's timeline.
type Span struct {
	Phase Phase
	// Start is the offset from the tracer epoch; Dur the span length.
	Start time.Duration
	Dur   time.Duration
	// Tick is the simulated time the span worked on (NoTick if none).
	Tick circuit.Tick
}

// sample is one counter-track data point (e.g. the GVT value over time).
type sample struct {
	name string
	at   time.Duration
	val  float64
}

// DefaultMaxSpans bounds each shard's buffer; one span is 40 bytes, so
// the default caps a shard near 10 MB.
const DefaultMaxSpans = 1 << 18

// Tracer owns a run's span shards. Create one per run, hand each LP its
// shard before the goroutines start, and WriteJSON after they join.
type Tracer struct {
	engine string
	epoch  time.Time

	mu     sync.Mutex
	shards []*Shard
	max    int
}

// NewTracer creates a tracer whose epoch is "now".
func NewTracer(engine string) *Tracer {
	return &Tracer{engine: engine, epoch: time.Now(), max: DefaultMaxSpans}
}

// SetMaxSpans overrides the per-shard span cap (before recording starts).
func (t *Tracer) SetMaxSpans(n int) {
	if n > 0 {
		t.max = n
	}
}

// Shard registers a new named timeline (one per LP, one per coordinator).
// Safe to call from setup code; each returned shard must afterwards be
// used by a single goroutine at a time. A nil tracer returns a nil shard,
// which every recording method accepts as a no-op.
func (t *Tracer) Shard(name string) *Shard {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Shard{tr: t, tid: len(t.shards) + 1, name: name, max: t.max}
	t.shards = append(t.shards, s)
	return s
}

// Shard is one timeline of the trace.
type Shard struct {
	tr      *Tracer
	tid     int
	name    string
	max     int
	spans   []Span
	samples []sample
	dropped uint64
}

// Now returns the current time, or the zero time on a nil shard — the
// cheap guard that keeps disabled tracing free of clock reads.
func (s *Shard) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a completed phase that began at start (a value from Now on
// this shard). No-op on a nil shard.
func (s *Shard) Span(p Phase, start time.Time, tick circuit.Tick) {
	if s == nil {
		return
	}
	if len(s.spans) >= s.max {
		s.dropped++
		return
	}
	s.spans = append(s.spans, Span{
		Phase: p,
		Start: start.Sub(s.tr.epoch),
		Dur:   time.Since(start),
		Tick:  tick,
	})
}

// Sample records one data point of a named counter track (rendered as a
// value-over-time chart by the trace viewer). No-op on a nil shard.
func (s *Shard) Sample(name string, v float64) {
	if s == nil {
		return
	}
	if len(s.samples) >= s.max {
		s.dropped++
		return
	}
	s.samples = append(s.samples, sample{name: name, at: time.Since(s.tr.epoch), val: v})
}

// Len reports the number of recorded spans.
func (s *Shard) Len() int {
	if s == nil {
		return 0
	}
	return len(s.spans)
}

// Dropped reports how many records the cap discarded.
func (s *Shard) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// addSpan appends a prebuilt span, honoring the cap. It exists for tests
// and fuzzing, which need to construct arbitrary span sequences without
// real clock reads.
func (s *Shard) addSpan(sp Span) {
	if len(s.spans) >= s.max {
		s.dropped++
		return
	}
	s.spans = append(s.spans, sp)
}

// TotalSpans sums the recorded spans across shards.
func (t *Tracer) TotalSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.shards {
		n += len(s.spans)
	}
	return n
}

// Dropped sums the drop counters across shards.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, s := range t.shards {
		n += s.dropped
	}
	return n
}

// chromeEvent is one trace_event record. Fields follow the Chrome
// Trace Event Format spec; ts and dur are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON emits the trace in Chrome trace_event JSON object format.
// Call only after every recording goroutine has joined.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: process named after the engine, one thread per shard.
	if err := emit(chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": t.engine},
	}); err != nil {
		return err
	}
	shards := append([]*Shard(nil), t.shards...)
	sort.SliceStable(shards, func(i, j int) bool { return shards[i].tid < shards[j].tid })
	for _, s := range shards {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: s.tid,
			Args: map[string]any{"name": s.name},
		}); err != nil {
			return err
		}
	}
	for _, s := range shards {
		for _, sp := range s.spans {
			ev := chromeEvent{
				Name: sp.Phase.String(),
				Cat:  "sim",
				Ph:   "X",
				Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
				Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
				Pid:  1,
				Tid:  s.tid,
			}
			if sp.Tick != NoTick {
				ev.Args = map[string]any{"t": uint64(sp.Tick)}
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		for _, c := range s.samples {
			if err := emit(chromeEvent{
				Name: c.name,
				Ph:   "C",
				Ts:   float64(c.at.Nanoseconds()) / 1e3,
				Pid:  1,
				Tid:  s.tid,
				Args: map[string]any{c.name: c.val},
			}); err != nil {
				return err
			}
		}
		if s.dropped > 0 {
			if err := emit(chromeEvent{
				Name: "dropped_records",
				Ph:   "M",
				Pid:  1,
				Tid:  s.tid,
				Args: map[string]any{"count": s.dropped},
			}); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprint(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
