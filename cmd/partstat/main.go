// Command partstat compares partitioning heuristics on a circuit: cut
// links (communication volume per event), load imbalance under uniform and
// pre-simulated weights, and partitioner wall time.
//
// Example:
//
//	partstat -circuit dag5000 -lps 8 -presim
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/vectors"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "read circuit from an ISCAS .bench file")
		circName  = flag.String("circuit", "dag2000", "built-in circuit name (see circgen)")
		lps       = flag.Int("lps", 8, "number of blocks")
		seed      = flag.Int64("seed", 1, "seed")
		presim    = flag.Bool("presim", false, "also judge balance under pre-simulated activity weights")
	)
	flag.Parse()

	c, err := load(*benchPath, *circName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partstat:", err)
		os.Exit(1)
	}
	uniform := partition.WeightsUniform(c)
	judge := uniform
	if *presim {
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 30, Period: 40, Activity: 0.5, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "partstat:", err)
			os.Exit(1)
		}
		judge, err = core.PreSimulate(c, stim, core.Horizon(c, stim), logic.TwoValued)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partstat:", err)
			os.Exit(1)
		}
	}

	st := c.ComputeStats()
	fmt.Printf("circuit: %d gates, %d inputs, %d outputs; %d blocks\n",
		st.Gates, st.Inputs, st.Outputs, *lps)
	fmt.Printf("%-12s %10s %12s %12s %10s\n", "method", "cut-links", "imbalance", "activity-imb", "time")
	for _, m := range []partition.Method{
		partition.MethodRandom, partition.MethodContiguous, partition.MethodStrings,
		partition.MethodCones, partition.MethodLevels, partition.MethodKL,
		partition.MethodFM, partition.MethodAnneal, partition.MethodMultilevel,
	} {
		start := time.Now()
		p, err := partition.New(m, c, *lps, partition.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "partstat: %v: %v\n", m, err)
			continue
		}
		el := time.Since(start)
		fmt.Printf("%-12s %10d %12.3f %12.3f %10v\n",
			m, p.CutLinks(c), p.Imbalance(uniform), p.Imbalance(judge), el.Round(time.Microsecond))
	}
}

func load(benchPath, name string, seed int64) (*circuit.Circuit, error) {
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f)
	}
	return gen.ByName(name, gen.Unit, seed)
}
