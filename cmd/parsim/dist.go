package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/simtest/chaos/netfault"
	"repro/internal/trace"
)

// distConfig carries the -dist* flag values into the distributed path.
type distConfig struct {
	shards    int
	exec      string
	network   string
	workDir   string
	restarts  int
	hbTimeout time.Duration
	hbEvery   time.Duration
	mesh      bool
	ckptDelta bool

	chaosSeed   uint64
	chaosFaults int
	chaosKill   bool

	benchPath  string
	circName   string
	fineDelays uint64
	seed       int64
	vectors    int
	activity   float64
	period     uint64
	engine     string
	until      uint64
	lps        int
	partition  string
	system     logic.System
	maxEvents  uint64
	watchdog   time.Duration
	ckptEvery  uint64
	fallback   bool

	vcdPath    string
	metricsOut string
	quiet      bool
	c          *circuit.Circuit
}

// runDist executes the distributed path: a coordinator in this process,
// worker shards over sockets (in-process goroutines by default, real
// parsimd-worker processes with -dist-exec), checkpointed recovery, and
// optional seeded network chaos.
func runDist(cfg distConfig) {
	var spawn dist.Spawner = dist.InProcSpawner{}
	if cfg.exec != "" {
		spawn = &dist.ExecSpawner{Bin: cfg.exec, Stderr: os.Stderr}
	}
	var plan netfault.Plan
	if cfg.chaosFaults > 0 {
		// On a mesh topology roughly half the non-kill faults retarget a
		// direct worker-to-worker link; hub-only plans keep their meaning.
		if cfg.mesh {
			plan = netfault.NewMeshPlan(cfg.chaosSeed, cfg.shards, cfg.chaosFaults, cfg.chaosKill)
		} else {
			plan = netfault.NewPlan(cfg.chaosSeed, cfg.shards, cfg.chaosFaults, cfg.chaosKill)
		}
		if !cfg.quiet {
			fmt.Printf("dist chaos: seed=%d faults=%d kills=%d\n", cfg.chaosSeed, len(plan), plan.Kills())
			for _, f := range plan {
				fmt.Printf("dist chaos: %s\n", f)
			}
		}
	}
	reg := metrics.NewRegistry(cfg.engine + "-dist")

	res, err := dist.Run(dist.Options{
		Shards:           cfg.shards,
		Engine:           cfg.engine,
		Bench:            cfg.benchPath,
		Circuit:          cfg.circName,
		FineDelays:       cfg.fineDelays,
		Seed:             cfg.seed,
		Vectors:          cfg.vectors,
		Activity:         cfg.activity,
		Period:           cfg.period,
		Until:            cfg.until,
		LPs:              cfg.lps,
		Partition:        cfg.partition,
		PartitionSeed:    cfg.seed,
		System:           cfg.system,
		MaxEvents:        cfg.maxEvents,
		HangTimeout:      cfg.watchdog,
		CheckpointEvery:  cfg.ckptEvery,
		WorkDir:          cfg.workDir,
		Restarts:         cfg.restarts,
		Fallback:         cfg.fallback,
		HeartbeatTimeout: cfg.hbTimeout,
		HeartbeatEvery:   cfg.hbEvery,
		Network:          cfg.network,
		Mesh:             cfg.mesh,
		CkptDelta:        cfg.ckptDelta,
		Plan:             plan,
		Spawn:            spawn,
		Metrics:          reg,
	})
	fatal(err)

	fmt.Printf("engine=%s-dist shards=%d mode=%s attempts=%d recoveries=%d fallbacks=%d events=%d end=%d\n",
		cfg.engine, res.Shards, res.FinalMode, res.Attempts, res.Recoveries, res.Fallbacks,
		res.Events, res.EndTime)
	if res.Degraded != "" && !cfg.quiet {
		fmt.Printf("dist: degraded after shard loss: %s\n", res.Degraded)
	}
	if !cfg.quiet {
		fmt.Printf("final outputs:")
		for _, o := range cfg.c.Outputs {
			fmt.Printf(" %s=%v", cfg.c.Gate(o).Name, res.Values[o])
		}
		fmt.Println()
	}

	if cfg.vcdPath != "" {
		f, err := os.Create(cfg.vcdPath)
		fatal(err)
		defer f.Close()
		fatal(trace.WriteVCD(f, cfg.c, cfg.c.Outputs, res.Waveform, "1ns"))
		if !cfg.quiet {
			fmt.Printf("wrote %d waveform samples to %s\n", len(res.Waveform), cfg.vcdPath)
		}
	}
	if cfg.metricsOut != "" {
		f, err := os.Create(cfg.metricsOut)
		fatal(err)
		defer f.Close()
		fatal(reg.Report().WriteJSON(f))
	}
}
