package main

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// distGolden produces the sequential reference VCD for the distributed
// e2e runs (same workload flags as the dist runs below).
func distGolden(t *testing.T, dir string) string {
	t.Helper()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vectors", "20", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}
	return golden
}

// TestDistMatchesSeqVCD: a sharded run over real loopback sockets
// (in-process workers) must emit a VCD byte-identical to the sequential
// reference.
func TestDistMatchesSeqVCD(t *testing.T) {
	dir := t.TempDir()
	golden := distGolden(t, dir)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			out := filepath.Join(dir, engine+"-dist.vcd")
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "4", "-vectors", "20",
				"-dist", "2", "-dist-workdir", t.TempDir(), "-vcd", out, "-q")
			if code != 0 {
				t.Fatalf("dist run failed (%d):\n%s", code, stderr)
			}
			if !strings.Contains(stdout, "engine="+engine+"-dist") ||
				!strings.Contains(stdout, "mode=dist") {
				t.Errorf("summary line missing:\n%s", stdout)
			}
			if readFile(t, out) != readFile(t, golden) {
				t.Error("distributed waveform differs from the sequential reference")
			}
		})
	}
}

// TestDistExecKillRecoversVCD is the full-stack recovery e2e: real
// parsimd-worker OS processes, a seeded chaos plan whose kills SIGKILL
// workers mid-run, checkpointed fleet restarts — and a final VCD that
// is still byte-identical to the uninterrupted sequential run.
func TestDistExecKillRecoversVCD(t *testing.T) {
	dir := t.TempDir()
	worker := filepath.Join(dir, "parsimd-worker")
	if out, err := exec.Command("go", "build", "-o", worker, "../parsimd-worker").CombinedOutput(); err != nil {
		t.Fatalf("building parsimd-worker: %v\n%s", err, out)
	}
	golden := distGolden(t, dir)

	out := filepath.Join(dir, "dist.vcd")
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "20",
		"-dist", "2", "-dist-exec", worker, "-dist-workdir", t.TempDir(),
		"-checkpoint-every", "200", "-dist-restarts", "3",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-vcd", out, "-q")
	if code != 0 {
		t.Fatalf("chaos run failed (%d):\n%s", code, stderr)
	}
	m := regexp.MustCompile(`recoveries=(\d+)`).FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("summary missing the recovery count:\n%s", stdout)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("chaos kills forced no recovery:\n%s", stdout)
	}
	if readFile(t, out) != readFile(t, golden) {
		t.Error("post-recovery waveform differs from the sequential reference")
	}
}

// TestExitCodeShardLoss extends the exit-code matrix: a kill plan with
// no restart budget and fallback disabled must abort with the
// shard-loss code (6) and a structured error naming the lost shard.
func TestExitCodeShardLoss(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "30",
		"-dist", "2", "-dist-workdir", t.TempDir(), "-dist-restarts", "0",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-fallback=false", "-q")
	if code != exitShardLoss {
		t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitShardLoss, stdout, stderr)
	}
	if !strings.Contains(stderr, "shard") {
		t.Errorf("stderr missing the shard-loss classification:\n%s", stderr)
	}
}

// TestDistShardLossFallsBack: the same unsurvivable plan with fallback
// left on must degrade to a single-process engine and exit zero with
// the reference waveform.
func TestDistShardLossFallsBack(t *testing.T) {
	dir := t.TempDir()
	golden := distGolden(t, dir)
	out := filepath.Join(dir, "degraded.vcd")
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "20",
		"-dist", "2", "-dist-workdir", t.TempDir(), "-dist-restarts", "0",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-vcd", out, "-q")
	if code != 0 {
		t.Fatalf("fallback run failed (%d):\n%s", code, stderr)
	}
	if strings.Contains(stdout, "mode=dist") {
		t.Errorf("run should have degraded off the distributed path:\n%s", stdout)
	}
	if readFile(t, out) != readFile(t, golden) {
		t.Error("degraded waveform differs from the sequential reference")
	}
}

// TestDistFlagConflicts: the distributed path rejects the flags that
// need global in-process state, with errors naming the offender.
func TestDistFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"wide", []string{"-dist", "2", "-wide", "-system", "2"}, "-wide"},
		{"opt", []string{"-dist", "2", "-opt"}, "-opt"},
		{"adapt", []string{"-dist", "2", "-adapt"}, "-adapt"},
		{"restore", []string{"-dist", "2", "-restore", "x.json"}, "-restore"},
		{"engine", []string{"-dist", "2", "-engine", "hybrid"}, "hybrid"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, append([]string{"-circuit", "ripple8", "-q"}, tc.args...)...)
			if code == 0 {
				t.Fatalf("conflicting flags accepted: %v", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr does not name %q:\n%s", tc.want, stderr)
			}
		})
	}
}
