package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// distGolden produces the sequential reference VCD for the distributed
// e2e runs (same workload flags as the dist runs below).
func distGolden(t *testing.T, dir string) string {
	t.Helper()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vectors", "20", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}
	return golden
}

// TestDistMatchesSeqVCD: a sharded run over real loopback sockets
// (in-process workers) must emit a VCD byte-identical to the sequential
// reference.
func TestDistMatchesSeqVCD(t *testing.T) {
	dir := t.TempDir()
	golden := distGolden(t, dir)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			out := filepath.Join(dir, engine+"-dist.vcd")
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "4", "-vectors", "20",
				"-dist", "2", "-dist-workdir", t.TempDir(), "-vcd", out, "-q")
			if code != 0 {
				t.Fatalf("dist run failed (%d):\n%s", code, stderr)
			}
			if !strings.Contains(stdout, "engine="+engine+"-dist") ||
				!strings.Contains(stdout, "mode=dist") {
				t.Errorf("summary line missing:\n%s", stdout)
			}
			if readFile(t, out) != readFile(t, golden) {
				t.Error("distributed waveform differs from the sequential reference")
			}
		})
	}
}

// TestDistExecKillRecoversVCD is the full-stack recovery e2e: real
// parsimd-worker OS processes, a seeded chaos plan whose kills SIGKILL
// workers mid-run, checkpointed fleet restarts — and a final VCD that
// is still byte-identical to the uninterrupted sequential run.
func TestDistExecKillRecoversVCD(t *testing.T) {
	dir := t.TempDir()
	worker := filepath.Join(dir, "parsimd-worker")
	if out, err := exec.Command("go", "build", "-o", worker, "../parsimd-worker").CombinedOutput(); err != nil {
		t.Fatalf("building parsimd-worker: %v\n%s", err, out)
	}
	golden := distGolden(t, dir)

	out := filepath.Join(dir, "dist.vcd")
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "20",
		"-dist", "2", "-dist-exec", worker, "-dist-workdir", t.TempDir(),
		"-checkpoint-every", "200", "-dist-restarts", "3",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-vcd", out, "-q")
	if code != 0 {
		t.Fatalf("chaos run failed (%d):\n%s", code, stderr)
	}
	m := regexp.MustCompile(`recoveries=(\d+)`).FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("summary missing the recovery count:\n%s", stdout)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("chaos kills forced no recovery:\n%s", stdout)
	}
	if readFile(t, out) != readFile(t, golden) {
		t.Error("post-recovery waveform differs from the sequential reference")
	}
}

// TestDistMeshMatchesSeqVCDAndStarvesHub: with -dist-mesh the waveform
// must still match the sequential reference byte for byte, while the
// metrics report proves the topology change — every inter-shard event
// batch took a direct worker link (hub data-plane bytes exactly zero,
// one relay hop instead of two).
func TestDistMeshMatchesSeqVCDAndStarvesHub(t *testing.T) {
	dir := t.TempDir()
	golden := distGolden(t, dir)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			out := filepath.Join(dir, engine+"-mesh.vcd")
			mpath := filepath.Join(dir, engine+"-mesh-metrics.json")
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "6", "-vectors", "20",
				"-dist", "3", "-dist-mesh", "-dist-workdir", t.TempDir(),
				"-vcd", out, "-metrics-out", mpath, "-q")
			if code != 0 {
				t.Fatalf("mesh run failed (%d):\n%s", code, stderr)
			}
			if !strings.Contains(stdout, "mode=dist") {
				t.Errorf("summary line missing:\n%s", stdout)
			}
			if readFile(t, out) != readFile(t, golden) {
				t.Error("mesh waveform differs from the sequential reference")
			}
			var rep struct {
				Gauges map[string]float64 `json:"gauges"`
			}
			if err := json.Unmarshal([]byte(readFile(t, mpath)), &rep); err != nil {
				t.Fatalf("metrics report does not parse: %v", err)
			}
			if hub := rep.Gauges["hub_bytes"]; hub != 0 {
				t.Errorf("hub relayed %v data-plane bytes on a mesh run, want 0", hub)
			}
			if mesh := rep.Gauges["mesh_bytes"]; mesh <= 0 {
				t.Errorf("mesh_bytes = %v, want > 0", mesh)
			}
			if hops := rep.Gauges["relay_hops"]; hops != 1 {
				t.Errorf("relay_hops = %v, want 1", hops)
			}
		})
	}
}

// TestDistMeshExecKillRecoversVCD is the mesh-topology twin of the
// full-stack recovery e2e, with incremental checkpoints on: real worker
// processes over direct peer links, a seeded plan whose kill SIGKILLs a
// worker mid-run, delta-chained shard snapshots — and a recovered VCD
// byte-identical to the uninterrupted sequential run. The fast
// heartbeat pace matters twice: control frames are all the hub sees of
// a mesh shard, so they both advance the chaos frame counter and feed
// the GVT piggyback.
func TestDistMeshExecKillRecoversVCD(t *testing.T) {
	dir := t.TempDir()
	worker := filepath.Join(dir, "parsimd-worker")
	if out, err := exec.Command("go", "build", "-o", worker, "../parsimd-worker").CombinedOutput(); err != nil {
		t.Fatalf("building parsimd-worker: %v\n%s", err, out)
	}
	golden := distGolden(t, dir)
	workDir := filepath.Join(dir, "work")

	out := filepath.Join(dir, "mesh-dist.vcd")
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "20",
		"-dist", "2", "-dist-mesh", "-dist-exec", worker, "-dist-workdir", workDir,
		"-ckpt-delta", "-checkpoint-every", "200", "-dist-restarts", "3",
		"-dist-heartbeat-every", "1ms",
		"-dist-chaos-seed", "23", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-vcd", out, "-q")
	if code != 0 {
		t.Fatalf("mesh chaos run failed (%d):\n%s", code, stderr)
	}
	m := regexp.MustCompile(`recoveries=(\d+)`).FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("summary missing the recovery count:\n%s", stdout)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("chaos kill forced no recovery:\n%s", stdout)
	}
	if readFile(t, out) != readFile(t, golden) {
		t.Error("post-recovery mesh waveform differs from the sequential reference")
	}
	deltas, err := filepath.Glob(filepath.Join(workDir, "shard-*-delta-*.json"))
	if err != nil || len(deltas) == 0 {
		t.Errorf("no delta checkpoint records on disk (err=%v)", err)
	}
}

// TestExitCodeShardLoss extends the exit-code matrix: a kill plan with
// no restart budget and fallback disabled must abort with the
// shard-loss code (6) and a structured error naming the lost shard.
func TestExitCodeShardLoss(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "30",
		"-dist", "2", "-dist-workdir", t.TempDir(), "-dist-restarts", "0",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-fallback=false", "-q")
	if code != exitShardLoss {
		t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitShardLoss, stdout, stderr)
	}
	if !strings.Contains(stderr, "shard") {
		t.Errorf("stderr missing the shard-loss classification:\n%s", stderr)
	}
}

// TestDistShardLossFallsBack: the same unsurvivable plan with fallback
// left on must degrade to a single-process engine and exit zero with
// the reference waveform.
func TestDistShardLossFallsBack(t *testing.T) {
	dir := t.TempDir()
	golden := distGolden(t, dir)
	out := filepath.Join(dir, "degraded.vcd")
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4", "-vectors", "20",
		"-dist", "2", "-dist-workdir", t.TempDir(), "-dist-restarts", "0",
		"-dist-chaos-seed", "7", "-dist-chaos-faults", "12", "-dist-chaos-kill",
		"-vcd", out, "-q")
	if code != 0 {
		t.Fatalf("fallback run failed (%d):\n%s", code, stderr)
	}
	if strings.Contains(stdout, "mode=dist") {
		t.Errorf("run should have degraded off the distributed path:\n%s", stdout)
	}
	if readFile(t, out) != readFile(t, golden) {
		t.Error("degraded waveform differs from the sequential reference")
	}
}

// TestDistFlagConflicts: the distributed path rejects the flags that
// need global in-process state, with errors naming the offender.
func TestDistFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"wide", []string{"-dist", "2", "-wide", "-system", "2"}, "-wide"},
		{"opt", []string{"-dist", "2", "-opt"}, "-opt"},
		{"adapt", []string{"-dist", "2", "-adapt"}, "-adapt"},
		{"restore", []string{"-dist", "2", "-restore", "x.json"}, "-restore"},
		{"engine", []string{"-dist", "2", "-engine", "hybrid"}, "hybrid"},
		{"mesh-without-dist", []string{"-dist-mesh"}, "-dist-mesh"},
		{"delta-without-dist", []string{"-ckpt-delta"}, "-ckpt-delta"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, append([]string{"-circuit", "ripple8", "-q"}, tc.args...)...)
			if code == 0 {
				t.Fatalf("conflicting flags accepted: %v", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr does not name %q:\n%s", tc.want, stderr)
			}
		})
	}
}
