package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the parsim binary TestMain builds once for every e2e test.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "parsim-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "parsim")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building parsim: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestMaxEventsAbortExitsNonZero is the regression test for the MaxEvents
// abort path: the process must exit non-zero and print the engine error,
// not report a half-finished simulation as success.
func TestMaxEventsAbortExitsNonZero(t *testing.T) {
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			cmd := exec.Command(binPath,
				"-circuit", "ripple8", "-engine", engine, "-lps", "2", "-max-events", "10", "-q")
			var stderr, stdout strings.Builder
			cmd.Stderr = &stderr
			cmd.Stdout = &stdout
			err := cmd.Run()
			if err == nil {
				t.Fatalf("exit 0 despite event-limit abort; stdout:\n%s", stdout.String())
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatal(err)
			}
			if ee.ExitCode() == 0 {
				t.Fatal("exit code 0")
			}
			if !strings.Contains(stderr.String(), "event limit") {
				t.Errorf("stderr missing the engine error:\n%s", stderr.String())
			}
		})
	}
}

// TestRunSucceeds is the happy-path e2e check: a small run exits zero and
// prints the summary line.
func TestRunSucceeds(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "engine=cmb") {
		t.Errorf("summary line missing:\n%s", out)
	}
}

// TestMaxEventsGenerousLimitPasses: a limit above the actual event count
// must not trip.
func TestMaxEventsGenerousLimitPasses(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5",
		"-max-events", "5000000", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generous limit aborted: %v\n%s", err, out)
	}
}
