package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// binPath is the parsim binary TestMain builds once for every e2e test.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "parsim-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "parsim")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building parsim: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the built parsim binary and returns (stdout, stderr, exit
// code). A zero code means success; -1 means the process failed to start.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running parsim: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestMaxEventsAbortExitsNonZero is the regression test for the MaxEvents
// abort path: the process must exit with the event-limit code (5) and
// print the engine error, not report a half-finished simulation as
// success.
func TestMaxEventsAbortExitsNonZero(t *testing.T) {
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "2", "-max-events", "10", "-q")
			if code != exitEventLimit {
				t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitEventLimit, stdout, stderr)
			}
			if !strings.Contains(stderr, "event limit") {
				t.Errorf("stderr missing the engine error:\n%s", stderr)
			}
		})
	}
}

// TestExitCodePanic: an injected LP panic without supervision must be
// recovered into a structured error and classified as exit code 4.
func TestExitCodePanic(t *testing.T) {
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "2",
				"-fault-panic-lp", "1", "-q")
			if code != exitPanic {
				t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitPanic, stdout, stderr)
			}
			if !strings.Contains(stderr, "panic") {
				t.Errorf("stderr missing panic classification:\n%s", stderr)
			}
		})
	}
}

// TestExitCodeHang: a permanently stalled LP with the watchdog armed but
// fallback disabled must abort with the hang code (3) and a
// machine-readable report.
func TestExitCodeHang(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
		"-fault-hang-lp", "1", "-watchdog", "250ms", "-retries", "0", "-fallback=false", "-q")
	if code != exitHang {
		t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitHang, stdout, stderr)
	}
	if !strings.Contains(stderr, "hang report") || !strings.Contains(stderr, "mailbox_depth") {
		t.Errorf("stderr missing the hang report:\n%s", stderr)
	}
}

// TestExitCodeCausality: sabotaged lookahead promises make the
// conservative engine deliver stragglers; the violation must be detected
// and classified as exit code 2.
func TestExitCodeCausality(t *testing.T) {
	_, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4",
		"-fault-lookahead-bias", "20", "-q")
	if code != exitCausality {
		t.Fatalf("exit code %d, want %d; stderr:\n%s", code, exitCausality, stderr)
	}
	if !strings.Contains(stderr, "causality") {
		t.Errorf("stderr missing causality classification:\n%s", stderr)
	}
}

// TestSupervisedHangRecovers: same permanent stall, but with fallback
// enabled the run must complete via degradation and exit zero.
func TestSupervisedHangRecovers(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
		"-fault-hang-lp", "1", "-watchdog", "250ms", "-retries", "0")
	if code != 0 {
		t.Fatalf("supervised run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "fallbacks=1") {
		t.Errorf("stdout missing the fallback count:\n%s", stdout)
	}
}

// TestSupervisedPanicRetrySucceeds: a one-shot panic under supervision is
// absorbed by a retry of the same engine.
func TestSupervisedPanicRetrySucceeds(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "timewarp", "-lps", "2",
		"-fault-panic-lp", "1", "-supervise", "-retries", "1")
	if code != 0 {
		t.Fatalf("supervised run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "recoveries=1") || !strings.Contains(stdout, "final-engine=timewarp") {
		t.Errorf("stdout missing the recovery summary:\n%s", stdout)
	}
}

// readFile is a fatal-on-error file slurp for waveform comparisons.
func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointRestoreVCD covers the full persistence loop end to end:
// a checkpointed run leaves snapshots on disk, and resuming from a mid-run
// snapshot reproduces the uninterrupted waveform byte for byte — including
// across an engine switch on restore.
func TestCheckpointRestoreVCD(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}

	ckptDir := filepath.Join(dir, "ckpts")
	checked := filepath.Join(dir, "checked.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-checkpoint-every", "400", "-checkpoint-dir", ckptDir,
		"-vcd", checked, "-q"); code != 0 {
		t.Fatalf("checkpointed run failed:\n%s", stderr)
	}
	if readFile(t, checked) != readFile(t, golden) {
		t.Fatal("checkpoint writing perturbed the waveform")
	}
	snaps, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.json"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("expected >= 2 checkpoints, got %v (err=%v)", snaps, err)
	}
	sort.Strings(snaps)
	mid := snaps[len(snaps)/2]

	for _, engine := range []string{"seq", "cmb", "timewarp"} {
		restored := filepath.Join(dir, "restored-"+engine+".vcd")
		if _, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", engine, "-lps", "2",
			"-restore", mid, "-vcd", restored, "-q"); code != 0 {
			t.Fatalf("%s restore failed:\n%s", engine, stderr)
		}
		if readFile(t, restored) != readFile(t, golden) {
			t.Errorf("%s: restored waveform differs from the uninterrupted run", engine)
		}
	}
}

// TestKillRestoreVCD models an interrupted run: the event limit kills the
// process partway (exit 5) with checkpoints already on disk, and restoring
// from the last one completes the simulation with the exact uninterrupted
// waveform.
func TestKillRestoreVCD(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}

	ckptDir := filepath.Join(dir, "ckpts")
	_, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-checkpoint-every", "300", "-checkpoint-dir", ckptDir,
		"-max-events", "2000", "-q")
	if code != exitEventLimit {
		t.Fatalf("interrupted run exited %d, want %d:\n%s", code, exitEventLimit, stderr)
	}
	snaps, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.json"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("kill left no checkpoints behind (err=%v)", err)
	}
	sort.Strings(snaps)
	last := snaps[len(snaps)-1]

	restored := filepath.Join(dir, "restored.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-restore", last, "-vcd", restored, "-q"); code != 0 {
		t.Fatalf("restore after kill failed:\n%s", stderr)
	}
	if readFile(t, restored) != readFile(t, golden) {
		t.Error("post-kill restore does not reproduce the uninterrupted waveform")
	}
}

// TestRunSucceeds is the happy-path e2e check: a small run exits zero and
// prints the summary line.
func TestRunSucceeds(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "engine=cmb") {
		t.Errorf("summary line missing:\n%s", out)
	}
}

// TestMaxEventsGenerousLimitPasses: a limit above the actual event count
// must not trip.
func TestMaxEventsGenerousLimitPasses(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5",
		"-max-events", "5000000", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generous limit aborted: %v\n%s", err, out)
	}
}
