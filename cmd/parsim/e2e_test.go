package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// binPath is the parsim binary TestMain builds once for every e2e test.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "parsim-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "parsim")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building parsim: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the built parsim binary and returns (stdout, stderr, exit
// code). A zero code means success; -1 means the process failed to start.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running parsim: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestMaxEventsAbortExitsNonZero is the regression test for the MaxEvents
// abort path: the process must exit with the event-limit code (5) and
// print the engine error, not report a half-finished simulation as
// success.
func TestMaxEventsAbortExitsNonZero(t *testing.T) {
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "2", "-max-events", "10", "-q")
			if code != exitEventLimit {
				t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitEventLimit, stdout, stderr)
			}
			if !strings.Contains(stderr, "event limit") {
				t.Errorf("stderr missing the engine error:\n%s", stderr)
			}
		})
	}
}

// TestExitCodePanic: an injected LP panic without supervision must be
// recovered into a structured error and classified as exit code 4.
func TestExitCodePanic(t *testing.T) {
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			stdout, stderr, code := run(t,
				"-circuit", "ripple8", "-engine", engine, "-lps", "2",
				"-fault-panic-lp", "1", "-q")
			if code != exitPanic {
				t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitPanic, stdout, stderr)
			}
			if !strings.Contains(stderr, "panic") {
				t.Errorf("stderr missing panic classification:\n%s", stderr)
			}
		})
	}
}

// TestExitCodeHang: a permanently stalled LP with the watchdog armed but
// fallback disabled must abort with the hang code (3) and a
// machine-readable report.
func TestExitCodeHang(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
		"-fault-hang-lp", "1", "-watchdog", "250ms", "-retries", "0", "-fallback=false", "-q")
	if code != exitHang {
		t.Fatalf("exit code %d, want %d; stdout:\n%s\nstderr:\n%s", code, exitHang, stdout, stderr)
	}
	if !strings.Contains(stderr, "hang report") || !strings.Contains(stderr, "mailbox_depth") {
		t.Errorf("stderr missing the hang report:\n%s", stderr)
	}
}

// TestExitCodeCausality: sabotaged lookahead promises make the
// conservative engine deliver stragglers; the violation must be detected
// and classified as exit code 2.
func TestExitCodeCausality(t *testing.T) {
	_, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "4",
		"-fault-lookahead-bias", "20", "-q")
	if code != exitCausality {
		t.Fatalf("exit code %d, want %d; stderr:\n%s", code, exitCausality, stderr)
	}
	if !strings.Contains(stderr, "causality") {
		t.Errorf("stderr missing causality classification:\n%s", stderr)
	}
}

// TestSupervisedHangRecovers: same permanent stall, but with fallback
// enabled the run must complete via degradation and exit zero.
func TestSupervisedHangRecovers(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
		"-fault-hang-lp", "1", "-watchdog", "250ms", "-retries", "0")
	if code != 0 {
		t.Fatalf("supervised run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "fallbacks=1") {
		t.Errorf("stdout missing the fallback count:\n%s", stdout)
	}
}

// TestSupervisedPanicRetrySucceeds: a one-shot panic under supervision is
// absorbed by a retry of the same engine.
func TestSupervisedPanicRetrySucceeds(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "timewarp", "-lps", "2",
		"-fault-panic-lp", "1", "-supervise", "-retries", "1")
	if code != 0 {
		t.Fatalf("supervised run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "recoveries=1") || !strings.Contains(stdout, "final-engine=timewarp") {
		t.Errorf("stdout missing the recovery summary:\n%s", stdout)
	}
}

// readFile is a fatal-on-error file slurp for waveform comparisons.
func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointRestoreVCD covers the full persistence loop end to end:
// a checkpointed run leaves snapshots on disk, and resuming from a mid-run
// snapshot reproduces the uninterrupted waveform byte for byte — including
// across an engine switch on restore.
func TestCheckpointRestoreVCD(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}

	ckptDir := filepath.Join(dir, "ckpts")
	checked := filepath.Join(dir, "checked.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-checkpoint-every", "400", "-checkpoint-dir", ckptDir,
		"-vcd", checked, "-q"); code != 0 {
		t.Fatalf("checkpointed run failed:\n%s", stderr)
	}
	if readFile(t, checked) != readFile(t, golden) {
		t.Fatal("checkpoint writing perturbed the waveform")
	}
	snaps, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.json"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("expected >= 2 checkpoints, got %v (err=%v)", snaps, err)
	}
	sort.Strings(snaps)
	mid := snaps[len(snaps)/2]

	for _, engine := range []string{"seq", "cmb", "timewarp"} {
		restored := filepath.Join(dir, "restored-"+engine+".vcd")
		if _, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", engine, "-lps", "2",
			"-restore", mid, "-vcd", restored, "-q"); code != 0 {
			t.Fatalf("%s restore failed:\n%s", engine, stderr)
		}
		if readFile(t, restored) != readFile(t, golden) {
			t.Errorf("%s: restored waveform differs from the uninterrupted run", engine)
		}
	}
}

// TestKillRestoreVCD models an interrupted run: the event limit kills the
// process partway (exit 5) with checkpoints already on disk, and restoring
// from the last one completes the simulation with the exact uninterrupted
// waveform.
func TestKillRestoreVCD(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}

	ckptDir := filepath.Join(dir, "ckpts")
	_, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-checkpoint-every", "300", "-checkpoint-dir", ckptDir,
		"-max-events", "2000", "-q")
	if code != exitEventLimit {
		t.Fatalf("interrupted run exited %d, want %d:\n%s", code, exitEventLimit, stderr)
	}
	snaps, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.json"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("kill left no checkpoints behind (err=%v)", err)
	}
	sort.Strings(snaps)
	last := snaps[len(snaps)-1]

	restored := filepath.Join(dir, "restored.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq",
		"-restore", last, "-vcd", restored, "-q"); code != 0 {
		t.Fatalf("restore after kill failed:\n%s", stderr)
	}
	if readFile(t, restored) != readFile(t, golden) {
		t.Error("post-kill restore does not reproduce the uninterrupted waveform")
	}
}

// TestRunSucceeds is the happy-path e2e check: a small run exits zero and
// prints the summary line.
func TestRunSucceeds(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "engine=cmb") {
		t.Errorf("summary line missing:\n%s", out)
	}
}

// TestMaxEventsGenerousLimitPasses: a limit above the actual event count
// must not trip.
func TestMaxEventsGenerousLimitPasses(t *testing.T) {
	cmd := exec.Command(binPath,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-vectors", "5",
		"-max-events", "5000000", "-q")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generous limit aborted: %v\n%s", err, out)
	}
}

// TestOptFlagRuns: -opt shrinks the generated DAG, prints the optimizer
// summary, and the run completes on both a scalar and a parallel engine.
// The gauge block lands in the metrics JSON on the parallel path.
func TestOptFlagRuns(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	stdout, stderr, code := run(t,
		"-circuit", "dag300", "-engine", "cmb", "-lps", "4",
		"-opt", "-metrics-out", mpath, "-vectors", "8")
	if code != 0 {
		t.Fatalf("-opt run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "optimizer:") {
		t.Errorf("stdout missing the optimizer summary:\n%s", stdout)
	}
	m := readFile(t, mpath)
	for _, key := range []string{"gates_removed", "gates_hashed", "levels_before", "levels_after"} {
		if !strings.Contains(m, key) {
			t.Errorf("metrics JSON missing optimizer gauge %q", key)
		}
	}
}

// TestOptPassesImpliesOpt: naming passes runs the optimizer without -opt,
// and an unknown pass name is a usage error.
func TestOptPassesImpliesOpt(t *testing.T) {
	stdout, stderr, code := run(t,
		"-circuit", "dag300", "-engine", "seq", "-opt-passes", "constprop,dce", "-vectors", "5")
	if code != 0 {
		t.Fatalf("-opt-passes run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "optimizer:") {
		t.Errorf("stdout missing the optimizer summary:\n%s", stdout)
	}
	_, stderr, code = run(t,
		"-circuit", "dag300", "-opt-passes", "nosuchpass", "-q")
	if code == 0 {
		t.Fatal("unknown pass name accepted")
	}
	if !strings.Contains(stderr, "nosuchpass") {
		t.Errorf("stderr does not name the bad pass:\n%s", stderr)
	}
}

// TestConeSplitRuns: -cone-split packs whole cones onto LPs; the hybrid
// run completes and reports the cone_count gauge.
func TestConeSplitRuns(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	_, stderr, code := run(t,
		"-circuit", "dag300", "-engine", "hybrid", "-lps", "4",
		"-opt", "-cone-split", "-metrics-out", mpath, "-vectors", "8", "-q")
	if code != 0 {
		t.Fatalf("-cone-split run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(readFile(t, mpath), "cone_count") {
		t.Error("metrics JSON missing the cone_count gauge")
	}
}

// TestOptPreservesOutputsVCD: optimized and unoptimized runs of the same
// sequential fixture must agree on every primary-output waveform. The VCD
// is filtered to output nets because internal nodes legitimately disappear.
func TestOptPreservesOutputsVCD(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.vcd")
	opt := filepath.Join(dir, "opt.vcd")
	for path, extra := range map[string][]string{plain: nil, opt: {"-opt"}} {
		args := append([]string{
			"-circuit", "lfsr16", "-engine", "seq", "-vectors", "10", "-vcd", path, "-q"}, extra...)
		if _, stderr, code := run(t, args...); code != 0 {
			t.Fatalf("run for %s failed:\n%s", path, stderr)
		}
	}
	want, got := outputChanges(t, plain), outputChanges(t, opt)
	if len(want) == 0 {
		t.Fatal("no output activity in the baseline VCD")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("optimized output waveform drifted:\n plain %v\n opt   %v", want, got)
	}
}

// TestAdaptFlagMatrix pins the -adapt flag surface: what it rejects,
// what it composes with, and how failures inside an adaptive run are
// classified.
func TestAdaptFlagMatrix(t *testing.T) {
	t.Run("rejects-wide", func(t *testing.T) {
		_, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "cmb", "-adapt", "-wide", "-system", "2", "-q")
		if code == 0 {
			t.Fatal("-adapt -wide accepted")
		}
		if !strings.Contains(stderr, "-wide") {
			t.Errorf("stderr does not explain the -wide conflict:\n%s", stderr)
		}
	})
	t.Run("rejects-serial-engine", func(t *testing.T) {
		_, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "seq", "-adapt", "-q")
		if code == 0 {
			t.Fatal("-adapt with -engine seq accepted")
		}
		if !strings.Contains(stderr, "parallel engine") {
			t.Errorf("stderr does not name the constraint:\n%s", stderr)
		}
	})
	t.Run("rejects-bad-spec", func(t *testing.T) {
		_, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "cmb", "-adapt-spec", "{not json", "-q")
		if code == 0 {
			t.Fatal("malformed inline spec accepted")
		}
		if !strings.Contains(stderr, "parse spec") {
			t.Errorf("stderr does not classify the parse failure:\n%s", stderr)
		}
		_, stderr, code = run(t,
			"-circuit", "ripple8", "-engine", "cmb", "-adapt-spec", "no-such-file.json", "-q")
		if code == 0 {
			t.Fatal("missing spec file accepted")
		}
		if !strings.Contains(stderr, "read spec") {
			t.Errorf("stderr does not classify the read failure:\n%s", stderr)
		}
	})
	t.Run("event-limit-exit-code", func(t *testing.T) {
		_, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "cmb", "-lps", "2", "-adapt", "-max-events", "10", "-q")
		if code != exitEventLimit {
			t.Fatalf("exit code %d, want %d:\n%s", code, exitEventLimit, stderr)
		}
	})
	t.Run("composes-with-supervise-and-checkpoints", func(t *testing.T) {
		dir := t.TempDir()
		stdout, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "timewarp", "-lps", "2",
			"-adapt", "-supervise", "-retries", "1",
			"-checkpoint-every", "400", "-checkpoint-dir", filepath.Join(dir, "ckpts"))
		if code != 0 {
			t.Fatalf("composed run failed (%d):\n%s", code, stderr)
		}
		if !strings.Contains(stdout, "adapt: segments=") {
			t.Errorf("stdout missing the adapt summary:\n%s", stdout)
		}
		if !strings.Contains(stdout, "supervision: final-engine=") {
			t.Errorf("stdout missing the supervision summary:\n%s", stdout)
		}
		snaps, _ := filepath.Glob(filepath.Join(dir, "ckpts", "ckpt-*.json"))
		if len(snaps) == 0 {
			t.Error("adaptive run wrote no checkpoints despite -checkpoint-every")
		}
	})
	t.Run("spec-implies-adapt", func(t *testing.T) {
		stdout, stderr, code := run(t,
			"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
			"-adapt-spec", `{"every":500}`)
		if code != 0 {
			t.Fatalf("-adapt-spec without -adapt failed (%d):\n%s", code, stderr)
		}
		if !strings.Contains(stdout, "adapt: segments=") {
			t.Errorf("stdout missing the adapt summary:\n%s", stdout)
		}
	})
}

// TestAdaptScriptedSwitchVCD forces a mid-run engine migration
// (cmb -> timewarp via checkpoint/restart at the first boundary) and
// requires the adaptive VCD to be byte-identical to a static run — the
// end-to-end proof that adaptation never perturbs results.
func TestAdaptScriptedSwitchVCD(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.vcd")
	if _, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "seq", "-vcd", golden, "-q"); code != 0 {
		t.Fatalf("golden run failed:\n%s", stderr)
	}
	adapted := filepath.Join(dir, "adapted.vcd")
	spec := `{"every":500,"no_switch":true,"no_rebalance":true,` +
		`"script":[{"round":0,"kind":"switch","to":"timewarp"}]}`
	stdout, stderr, code := run(t,
		"-circuit", "ripple8", "-engine", "cmb", "-lps", "2",
		"-adapt-spec", spec, "-vcd", adapted)
	if code != 0 {
		t.Fatalf("adaptive run failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "switch cmb -> timewarp") {
		t.Errorf("stdout missing the decision log line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "final-engine=timewarp") {
		t.Errorf("stdout missing the final engine:\n%s", stdout)
	}
	if readFile(t, adapted) != readFile(t, golden) {
		t.Error("adaptive waveform differs from the static run")
	}
}

// outputChanges extracts the value-change history of nets named out* / q* /
// sum* / cout* from a VCD file, keyed by net name.
func outputChanges(t *testing.T, path string) map[string][]string {
	t.Helper()
	body := readFile(t, path)
	id2name := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		f := strings.Fields(line)
		if len(f) >= 5 && f[0] == "$var" {
			id2name[f[3]] = f[4]
		}
	}
	isOut := func(name string) bool {
		for _, p := range []string{"out", "q", "sum", "cout"} {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	changes := map[string][]string{}
	now := ""
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "#"):
			now = line
		case len(line) >= 2 && !strings.HasPrefix(line, "$"):
			val, id := line[:1], line[1:]
			if name, ok := id2name[id]; ok && isOut(name) {
				changes[name] = append(changes[name], now+"="+val)
			}
		}
	}
	return changes
}
