// Command parsim runs any of the simulation engines on a circuit.
//
// Circuits come from an ISCAS-style .bench file (-bench), from the
// embedded examples (-circuit c17|s27), or from a generator
// (-circuit mul16, ripple32, lfsr16, counter12, dag5000, seq2000, ...).
// Stimulus is random vectors (-vectors, -activity, -period) or a clocked
// sequence when the circuit has a clk/CLK input.
//
// Examples:
//
//	parsim -circuit mul16 -engine timewarp -lps 8 -partition fm
//	parsim -bench mydesign.bench -engine cmb -lps 4 -vcd out.vcd
//	parsim -circuit c17 -engine seq -vectors 100
//	parsim -circuit dag1000 -engine sync -trace-out t.json -metrics-out m.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/timewarp"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func main() {
	var (
		benchPath  = flag.String("bench", "", "read circuit from an ISCAS .bench file")
		circName   = flag.String("circuit", "c17", "built-in circuit: c17, s27, mulN, rippleN, claN, lfsrN, counterN, shiftN, dagN, seqN")
		engineName = flag.String("engine", "seq", "engine: seq, oblivious, sync, cmb, cmb-demand, cmb-detect, timewarp, timewarp-lazy, hybrid")
		lps        = flag.Int("lps", 4, "logical processes / workers")
		partName   = flag.String("partition", "fm", "partitioner: random, contiguous, strings, cones, levels, kl, fm, anneal, multilevel")
		presim     = flag.Bool("presim", false, "weight the partitioner with a pre-simulation profile")
		system     = flag.Int("system", 9, "logic value system: 2, 4, or 9")
		queueName  = flag.String("queue", "heap", "pending-event set: heap, calendar, wheel")
		nvectors   = flag.Int("vectors", 50, "number of random vectors")
		activity   = flag.Float64("activity", 0.5, "per-input toggle probability per vector")
		period     = flag.Uint64("period", 40, "ticks between vectors")
		seed       = flag.Int64("seed", 1, "stimulus and partition seed")
		fineDelays = flag.Uint64("fine-delays", 0, "assign random delays in [1,N] to generated circuits (0 = unit)")
		window     = flag.Uint64("window", 0, "Time Warp moving window (0 = unbounded)")
		maxEvents  = flag.Uint64("max-events", 0, "abort with an error after this many events (0 = unlimited)")
		lazy       = flag.Bool("lazy", false, "Time Warp lazy cancellation")
		fullCopy   = flag.Bool("full-copy", false, "Time Warp full-copy state saving")
		vcdPath    = flag.String("vcd", "", "write the output waveform as VCD to this file")
		metricsOut = flag.String("metrics-out", "", "write the machine-readable metrics report (JSON) to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event timeline (chrome://tracing, Perfetto) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (enables pprof LP labels)")
		quiet      = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	c, err := loadCircuit(*benchPath, *circName, *fineDelays, *seed)
	fatal(err)

	stim, err := makeStimulus(c, *nvectors, *activity, circuit.Tick(*period), *seed)
	fatal(err)

	engine, err := core.ParseEngine(*engineName)
	fatal(err)
	method, err := partition.ParseMethod(*partName)
	fatal(err)

	var sys logic.System
	switch *system {
	case 2:
		sys = logic.TwoValued
	case 4:
		sys = logic.FourValued
	case 9:
		sys = logic.NineValued
	default:
		fatal(fmt.Errorf("invalid -system %d", *system))
	}
	var queue eventq.Impl
	switch *queueName {
	case "heap":
		queue = eventq.ImplHeap
	case "calendar":
		queue = eventq.ImplCalendar
	case "wheel":
		queue = eventq.ImplWheel
	default:
		fatal(fmt.Errorf("invalid -queue %q", *queueName))
	}

	until := core.Horizon(c, stim)
	opts := core.Options{
		Engine: engine, LPs: *lps, Partition: method, PartitionSeed: *seed,
		System: sys, Queue: queue, Window: circuit.Tick(*window),
		MaxEvents: *maxEvents,
	}
	if *traceOut != "" {
		opts.Tracer = trace.NewTracer(engine.String())
	}
	if *cpuProfile != "" {
		opts.PProfLabels = true
		f, err := os.Create(*cpuProfile)
		fatal(err)
		defer f.Close()
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *lazy {
		opts.Cancellation = timewarp.Lazy
	}
	if *fullCopy {
		opts.StateSaving = timewarp.FullCopy
	}
	if *presim && engine.Parallel() {
		w, err := core.PreSimulate(c, stim, until, sys)
		fatal(err)
		opts.Weights = w
	}

	st := c.ComputeStats()
	if !*quiet {
		fmt.Printf("circuit: %d gates (%d FFs), %d inputs, %d outputs, depth %d, delays %d..%d\n",
			st.Gates, st.FlipFlops, st.Inputs, st.Outputs, st.CombDepth, st.MinDelay, st.MaxDelay)
		fmt.Printf("stimulus: %d vectors to t=%d, horizon t=%d\n", stim.NumVectors(), stim.End, until)
	}

	rep, err := core.Simulate(c, stim, until, opts)
	fatal(err)

	model := stats.DefaultCostModel()
	fmt.Printf("engine=%s lps=%d modeled=%.2fms wall=%v\n",
		engine, rep.Processors, rep.Modeled/1e6, rep.Stats.Wall.Round(10))
	if !*quiet {
		if engine != core.EngineSeq {
			fmt.Printf("counters: %s\n", rep.Stats.Summary(model))
			base, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineSeq, System: sys, Queue: queue})
			fatal(err)
			fmt.Printf("modeled speedup over sequential: %.2fx on %d processors\n",
				rep.SpeedupOver(base, model), rep.Processors)
		} else {
			fmt.Printf("counters: evals=%d events=%d timesteps=%d\n",
				rep.SeqWork.Evaluations, rep.SeqWork.EventsApplied, rep.SeqWork.Steps)
		}
		fmt.Printf("final outputs:")
		for _, o := range c.Outputs {
			fmt.Printf(" %s=%v", c.Gate(o).Name, rep.Values[o])
		}
		fmt.Println()
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		fatal(err)
		defer f.Close()
		fatal(trace.WriteVCD(f, c, c.Outputs, rep.Waveform, "1ns"))
		if !*quiet {
			fmt.Printf("wrote %d waveform samples to %s\n", len(rep.Waveform), *vcdPath)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fatal(err)
		defer f.Close()
		if rep.Metrics == nil {
			fatal(fmt.Errorf("no metrics report produced"))
		}
		fatal(rep.Metrics.WriteJSON(f))
		if !*quiet {
			fmt.Printf("metrics: %s -> %s\n", rep.Metrics.Summary(), *metricsOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		defer f.Close()
		fatal(opts.Tracer.WriteJSON(f))
		if !*quiet {
			fmt.Printf("trace: %d spans (%d dropped) -> %s\n",
				opts.Tracer.TotalSpans(), opts.Tracer.Dropped(), *traceOut)
		}
	}
}

// loadCircuit resolves the circuit source.
func loadCircuit(benchPath, name string, fine uint64, seed int64) (*circuit.Circuit, error) {
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f)
	}
	delays := gen.Unit
	if fine > 0 {
		delays = gen.Fine(circuit.Tick(fine), seed)
	}
	return gen.ByName(name, delays, seed)
}

// makeStimulus builds clocked stimulus when the circuit has a clock input,
// random vectors otherwise.
func makeStimulus(c *circuit.Circuit, vecs int, activity float64, period circuit.Tick, seed int64) (*vectors.Stimulus, error) {
	for _, clk := range []string{"clk", "CLK", "__CLK"} {
		if _, ok := c.ByName(clk); ok {
			if isInput(c, clk) {
				return vectors.Clocked(c, vectors.ClockedConfig{
					Clock: clk, Cycles: vecs, HalfPeriod: period, Activity: activity, Seed: seed,
				})
			}
		}
	}
	return vectors.Random(c, vectors.RandomConfig{
		Vectors: vecs, Period: period, Activity: activity, Seed: seed,
	})
}

func isInput(c *circuit.Circuit, name string) bool {
	id, ok := c.ByName(name)
	if !ok {
		return false
	}
	return c.Gate(id).Kind == circuit.Input
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsim:", err)
		os.Exit(1)
	}
}
