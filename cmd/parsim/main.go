// Command parsim runs any of the simulation engines on a circuit.
//
// Circuits come from an ISCAS-style .bench file (-bench), from the
// embedded examples (-circuit c17|s27), or from a generator
// (-circuit mul16, ripple32, lfsr16, counter12, dag5000, seq2000, ...).
// Stimulus is random vectors (-vectors, -activity, -period) or a clocked
// sequence when the circuit has a clk/CLK input.
//
// Examples:
//
//	parsim -circuit mul16 -engine timewarp -lps 8 -partition fm
//	parsim -bench mydesign.bench -engine cmb -lps 4 -vcd out.vcd
//	parsim -circuit c17 -engine seq -vectors 100
//	parsim -circuit dag1000 -engine sync -trace-out t.json -metrics-out m.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/timewarp"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Exit codes classify failures for scripts and the e2e suite: 2 causality
// violation, 3 watchdog hang, 4 panic recovered by the supervision layer,
// 5 event limit exceeded, 6 distributed shard loss with the restart
// budget exhausted, 1 anything else.
const (
	exitCausality  = 2
	exitHang       = 3
	exitPanic      = 4
	exitEventLimit = 5
	exitShardLoss  = 6
)

func main() {
	var (
		benchPath  = flag.String("bench", "", "read circuit from an ISCAS .bench file")
		circName   = flag.String("circuit", "c17", "built-in circuit: c17, s27, mulN, rippleN, claN, lfsrN, counterN, shiftN, dagN, seqN")
		engineName = flag.String("engine", "seq", "engine: seq, oblivious, sync, cmb, cmb-demand, cmb-detect, timewarp, timewarp-lazy, hybrid")
		lps        = flag.Int("lps", 4, "logical processes / workers")
		partName   = flag.String("partition", "fm", "partitioner: random, contiguous, strings, cones, levels, kl, fm, anneal, multilevel")
		optimize   = flag.Bool("opt", false, "run the netlist optimizer pipeline before simulation")
		optPasses  = flag.String("opt-passes", "", "comma-separated optimizer passes (implies -opt; default constprop,hash,bufclean,dce; also: invpair, balance)")
		coneSplit  = flag.Bool("cone-split", false, "group whole combinational cones onto LPs and evaluate each obliviously in one sweep (overrides -partition)")
		presim     = flag.Bool("presim", false, "weight the partitioner with a pre-simulation profile")
		system     = flag.Int("system", 9, "logic value system: 2, 4, or 9")
		queueName  = flag.String("queue", "heap", "pending-event set: heap, calendar, wheel")
		wide       = flag.Bool("wide", false, "wide evaluation: pack -lanes independent stimulus batches into 64-lane words, 64 vectors per gate op (2- or 4-valued only)")
		lanes      = flag.Int("lanes", logic.Lanes, "meaningful lanes of a -wide run (1..64); each lane gets an independent stimulus")
		nvectors   = flag.Int("vectors", 50, "number of random vectors")
		activity   = flag.Float64("activity", 0.5, "per-input toggle probability per vector")
		period     = flag.Uint64("period", 40, "ticks between vectors")
		seed       = flag.Int64("seed", 1, "stimulus and partition seed")
		fineDelays = flag.Uint64("fine-delays", 0, "assign random delays in [1,N] to generated circuits (0 = unit)")
		window     = flag.Uint64("window", 0, "Time Warp moving window (0 = unbounded)")
		maxEvents  = flag.Uint64("max-events", 0, "abort with an error after this many events (0 = unlimited)")
		lazy       = flag.Bool("lazy", false, "Time Warp lazy cancellation")
		fullCopy   = flag.Bool("full-copy", false, "Time Warp full-copy state saving")
		vcdPath    = flag.String("vcd", "", "write the output waveform as VCD to this file")
		metricsOut = flag.String("metrics-out", "", "write the machine-readable metrics report (JSON) to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event timeline (chrome://tracing, Perfetto) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (enables pprof LP labels)")
		quiet      = flag.Bool("q", false, "print only the summary line")

		supervised = flag.Bool("supervise", false, "run under the supervision layer (panic isolation, retries, fallback)")
		watchdog   = flag.Duration("watchdog", 0, "abort after this long without progress (implies -supervise)")
		retries    = flag.Int("retries", 1, "supervised retries of the selected engine before falling back")
		fallback   = flag.Bool("fallback", true, "supervised: degrade to sync then seq when retries are exhausted")
		ckptEvery  = flag.Uint64("checkpoint-every", 0, "write a checkpoint every N ticks of modeled time (0 = off)")
		ckptDir    = flag.String("checkpoint-dir", "checkpoints", "directory receiving ckpt-<time>.json files")
		restore    = flag.String("restore", "", "resume from this checkpoint file")
		histLimit  = flag.Uint64("history-limit", 0, "Time Warp saved-history bound in words (0 = unlimited)")
		adaptive   = flag.Bool("adapt", false, "closed-loop adaptive control: self-tune the optimism window, switch engines, and rebalance LPs mid-run")
		adaptSpec  = flag.String("adapt-spec", "", "adaptive controller configuration: inline JSON or a path to a JSON file (implies -adapt)")

		distShards    = flag.Int("dist", 0, "distributed: run the engine across this many socket-connected worker shards (0 = off)")
		distExec      = flag.String("dist-exec", "", "distributed: path to the parsimd-worker binary (empty = in-process workers over real sockets)")
		distNetwork   = flag.String("dist-network", "tcp", "distributed: transport network, tcp or unix")
		distWorkDir   = flag.String("dist-workdir", "", "distributed: directory for shard checkpoints and boot files (empty = temporary)")
		distRestarts  = flag.Int("dist-restarts", 2, "distributed: fleet restart budget after a shard loss")
		distHBTimeout = flag.Duration("dist-heartbeat-timeout", time.Second, "distributed: a result-less shard silent this long is declared lost")
		distHBEvery   = flag.Duration("dist-heartbeat-every", 0, "distributed: worker heartbeat pace (0 = engine default; also the GVT piggyback cadence on a mesh)")
		distMesh      = flag.Bool("dist-mesh", false, "distributed: route inter-shard event batches over direct worker-to-worker links (hub keeps only the control plane)")
		ckptDelta     = flag.Bool("ckpt-delta", false, "distributed: after the first full shard snapshot per attempt, write fingerprint-chained delta records at later boundaries (requires -dist)")

		distChaosSeed   = flag.Uint64("dist-chaos-seed", 1, "distributed chaos: netfault plan seed")
		distChaosFaults = flag.Int("dist-chaos-faults", 0, "distributed chaos: number of planned network faults (0 = off)")
		distChaosKill   = flag.Bool("dist-chaos-kill", false, "distributed chaos: allow worker-kill faults in the plan")

		faultPanicLP = flag.Int("fault-panic-lp", -1, "chaos: panic once inside this LP (-1 = off)")
		faultHangLP  = flag.Int("fault-hang-lp", -1, "chaos: hang this LP until the run aborts (-1 = off)")
		faultBias    = flag.Uint64("fault-lookahead-bias", 0, "chaos: inflate cmb lookahead promises by N ticks (forces causality violations)")
	)
	flag.Parse()

	if *wide && *system == 9 {
		// Nine-valued signals don't pack into two-bit lanes; a wide run
		// defaults to four-valued unless -system was given explicitly.
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "system" })
		if !explicit {
			*system = 4
		}
	}

	c, err := loadCircuit(*benchPath, *circName, *fineDelays, *seed)
	fatal(err)

	// The optimizer runs before stimulus generation: primary inputs and
	// outputs always survive with their names, so stimuli and VCD watch
	// lists built against the optimized netlist resolve identically.
	var ostats *opt.Stats
	if *optimize || *optPasses != "" {
		passes, err := opt.ParsePasses(*optPasses)
		fatal(err)
		res, err := opt.Optimize(c, opt.Options{Passes: passes})
		fatal(err)
		c, ostats = res.Circuit, &res.Stats
		if !*quiet {
			fmt.Printf("optimizer: %d -> %d gates (hashed=%d folds=%d bufs=%d dead=%d), depth %d -> %d, %d rounds\n",
				ostats.GatesBefore, ostats.GatesAfter, ostats.GatesHashed, ostats.ConstFolds,
				ostats.BufsCleaned, ostats.DeadRemoved, ostats.LevelsBefore, ostats.LevelsAfter, ostats.Rounds)
		}
	}

	stim, err := makeStimulus(c, *nvectors, *activity, circuit.Tick(*period), *seed)
	fatal(err)

	engine, err := core.ParseEngine(*engineName)
	fatal(err)
	method, err := partition.ParseMethod(*partName)
	fatal(err)

	var sys logic.System
	switch *system {
	case 2:
		sys = logic.TwoValued
	case 4:
		sys = logic.FourValued
	case 9:
		sys = logic.NineValued
	default:
		fatal(fmt.Errorf("invalid -system %d", *system))
	}
	var queue eventq.Impl
	switch *queueName {
	case "heap":
		queue = eventq.ImplHeap
	case "calendar":
		queue = eventq.ImplCalendar
	case "wheel":
		queue = eventq.ImplWheel
	default:
		fatal(fmt.Errorf("invalid -queue %q", *queueName))
	}

	until := core.Horizon(c, stim)

	if *distShards == 0 && (*distMesh || *ckptDelta) {
		fatal(fmt.Errorf("-dist-mesh and -ckpt-delta require -dist"))
	}
	if *distShards > 0 {
		// The distributed path regenerates the circuit and stimulus inside
		// every worker from the job spec, so transformations applied only
		// in this process (optimizer, cone-split, pre-simulation weights)
		// and single-process-only machinery (wide, adaptive control,
		// restore, in-process fault injection) cannot ride along.
		switch {
		case *wide:
			fatal(fmt.Errorf("-dist does not support -wide (scalar wire format)"))
		case *optimize || *optPasses != "":
			fatal(fmt.Errorf("-dist does not support -opt: workers regenerate the unoptimized netlist from the job spec"))
		case *coneSplit:
			fatal(fmt.Errorf("-dist does not support -cone-split"))
		case *presim:
			fatal(fmt.Errorf("-dist does not support -presim"))
		case *restore != "":
			fatal(fmt.Errorf("-dist does not support -restore (recovery boots from its own shard checkpoints)"))
		case *adaptive || *adaptSpec != "":
			fatal(fmt.Errorf("-dist does not support -adapt"))
		case *faultPanicLP >= 0 || *faultHangLP >= 0 || *faultBias > 0:
			fatal(fmt.Errorf("-dist does not support in-process fault injection (use -dist-chaos-*)"))
		}
		if !*quiet {
			st := c.ComputeStats()
			fmt.Printf("circuit: %d gates (%d FFs), %d inputs, %d outputs, depth %d, delays %d..%d\n",
				st.Gates, st.FlipFlops, st.Inputs, st.Outputs, st.CombDepth, st.MinDelay, st.MaxDelay)
			fmt.Printf("stimulus: %d vectors to t=%d, horizon t=%d\n", stim.NumVectors(), stim.End, until)
		}
		runDist(distConfig{
			shards: *distShards, exec: *distExec, network: *distNetwork,
			workDir: *distWorkDir, restarts: *distRestarts, hbTimeout: *distHBTimeout,
			hbEvery: *distHBEvery, mesh: *distMesh, ckptDelta: *ckptDelta,
			chaosSeed: *distChaosSeed, chaosFaults: *distChaosFaults, chaosKill: *distChaosKill,
			benchPath: *benchPath, circName: *circName, fineDelays: *fineDelays,
			seed: *seed, vectors: *nvectors, activity: *activity, period: *period,
			engine: *engineName, until: uint64(until), lps: *lps, partition: *partName,
			system: sys, maxEvents: *maxEvents, watchdog: *watchdog,
			ckptEvery: *ckptEvery, fallback: *fallback,
			vcdPath: *vcdPath, metricsOut: *metricsOut, quiet: *quiet, c: c,
		})
		return
	}

	opts := core.Options{
		Engine: engine, LPs: *lps, Partition: method, PartitionSeed: *seed,
		System: sys, Queue: queue, Window: circuit.Tick(*window),
		MaxEvents: *maxEvents, ConeSplit: *coneSplit,
	}
	if *traceOut != "" {
		opts.Tracer = trace.NewTracer(engine.String())
	}
	if *cpuProfile != "" {
		opts.PProfLabels = true
		f, err := os.Create(*cpuProfile)
		fatal(err)
		defer f.Close()
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *lazy {
		opts.Cancellation = timewarp.Lazy
	}
	if *fullCopy {
		opts.StateSaving = timewarp.FullCopy
	}
	if *presim && engine.Parallel() {
		w, err := core.PreSimulate(c, stim, until, sys)
		fatal(err)
		opts.Weights = w
	}
	if *faultPanicLP >= 0 || *faultHangLP >= 0 || *faultBias > 0 {
		hook := inject.NewHook(uint64(*seed), nil)
		hook.PanicLP = *faultPanicLP
		hook.HangLP = *faultHangLP
		hook.LookaheadBias = *faultBias
		opts.Chaos = hook
	}
	if *watchdog > 0 {
		*supervised = true
	}
	if *supervised {
		opts.Supervise = &core.SuperviseOptions{
			Watchdog: *watchdog,
			Retries:  *retries,
			Backoff:  10 * time.Millisecond,
			Fallback: *fallback,
		}
	}
	opts.HistoryLimit = *histLimit
	if *ckptEvery > 0 {
		opts.CheckpointEvery = circuit.Tick(*ckptEvery)
		opts.CheckpointDir = *ckptDir
	}
	if *restore != "" {
		st, err := ckpt.ReadFile(*restore)
		fatal(err)
		opts.Restore = st
	}
	if *adaptSpec != "" {
		*adaptive = true
	}
	if *adaptive {
		if *wide {
			fatal(fmt.Errorf("-adapt does not support -wide: the controllers drive the scalar engines' checkpoint/restart path"))
		}
		sp, err := adapt.ParseSpec(*adaptSpec)
		fatal(err)
		opts.Adapt = sp
	}

	st := c.ComputeStats()
	if !*quiet {
		fmt.Printf("circuit: %d gates (%d FFs), %d inputs, %d outputs, depth %d, delays %d..%d\n",
			st.Gates, st.FlipFlops, st.Inputs, st.Outputs, st.CombDepth, st.MinDelay, st.MaxDelay)
		fmt.Printf("stimulus: %d vectors to t=%d, horizon t=%d\n", stim.NumVectors(), stim.End, until)
	}

	if *wide {
		runWide(c, *lanes, *nvectors, *activity, circuit.Tick(*period), *seed, opts,
			*vcdPath, *metricsOut, *traceOut, *quiet, ostats)
		return
	}

	rep, err := core.Simulate(c, stim, until, opts)
	fatal(err)
	addOptGauges(rep.Metrics, ostats)

	if rep.Adapt != nil && !*quiet {
		a := rep.Adapt
		fmt.Printf("adapt: segments=%d switches=%d rebalances=%d window-changes=%d final-engine=%s final-window=%d committed=%v\n",
			a.Segments, a.EngineSwitches, a.Rebalances, a.WindowChanges, a.FinalEngine, a.FinalWindow, a.Committed)
		for _, d := range a.Decisions {
			fmt.Printf("adapt: %s\n", d)
		}
	}

	if rep.Supervision != nil && !*quiet {
		fmt.Printf("supervision: final-engine=%s recoveries=%d fallbacks=%d\n",
			rep.Supervision.FinalEngine, rep.Supervision.Recoveries, rep.Supervision.Fallbacks)
		for _, a := range rep.Supervision.Attempts {
			fmt.Printf("supervision: recovered attempt: %s\n", a)
		}
	}

	model := stats.DefaultCostModel()
	fmt.Printf("engine=%s lps=%d modeled=%.2fms wall=%v\n",
		engine, rep.Processors, rep.Modeled/1e6, rep.Stats.Wall.Round(10))
	if !*quiet {
		if engine != core.EngineSeq {
			fmt.Printf("counters: %s\n", rep.Stats.Summary(model))
			base, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineSeq, System: sys, Queue: queue})
			fatal(err)
			fmt.Printf("modeled speedup over sequential: %.2fx on %d processors\n",
				rep.SpeedupOver(base, model), rep.Processors)
		} else {
			fmt.Printf("counters: evals=%d events=%d timesteps=%d\n",
				rep.SeqWork.Evaluations, rep.SeqWork.EventsApplied, rep.SeqWork.Steps)
		}
		fmt.Printf("final outputs:")
		for _, o := range c.Outputs {
			fmt.Printf(" %s=%v", c.Gate(o).Name, rep.Values[o])
		}
		fmt.Println()
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		fatal(err)
		defer f.Close()
		fatal(trace.WriteVCD(f, c, c.Outputs, rep.Waveform, "1ns"))
		if !*quiet {
			fmt.Printf("wrote %d waveform samples to %s\n", len(rep.Waveform), *vcdPath)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fatal(err)
		defer f.Close()
		if rep.Metrics == nil {
			fatal(fmt.Errorf("no metrics report produced"))
		}
		fatal(rep.Metrics.WriteJSON(f))
		if !*quiet {
			fmt.Printf("metrics: %s -> %s\n", rep.Metrics.Summary(), *metricsOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		defer f.Close()
		fatal(opts.Tracer.WriteJSON(f))
		if !*quiet {
			fmt.Printf("trace: %d spans (%d dropped) -> %s\n",
				opts.Tracer.TotalSpans(), opts.Tracer.Dropped(), *traceOut)
		}
	}
}

// runWide executes the -wide path: -lanes independent stimulus batches are
// packed into 64-lane words and evaluated by the wide variant of the
// selected engine, 64 vectors per gate operation. Supervision,
// checkpointing, restore, fault injection, and the nine-valued system have
// no wide counterpart and are rejected up front.
func runWide(c *circuit.Circuit, lanes, vecs int, activity float64, period circuit.Tick,
	seed int64, opts core.Options, vcdPath, metricsOut, traceOut string, quiet bool, ostats *opt.Stats) {
	switch {
	case opts.System == logic.NineValued:
		fatal(fmt.Errorf("-wide needs -system 2 or 4: nine-valued signals do not pack into two-bit lanes"))
	case opts.Supervise != nil:
		fatal(fmt.Errorf("-wide does not support -supervise/-watchdog"))
	case opts.Restore != nil:
		fatal(fmt.Errorf("-wide does not support -restore"))
	case opts.Chaos != nil:
		fatal(fmt.Errorf("-wide does not support fault injection"))
	case opts.CheckpointEvery > 0:
		fatal(fmt.Errorf("-wide does not support -checkpoint-every"))
	}

	ws, err := makeWideStimulus(c, lanes, vecs, activity, period, seed, opts.System)
	fatal(err)
	until := core.WideHorizon(c, ws)
	if !quiet {
		fmt.Printf("wide: %d lanes x %d boundaries (%d vectors), horizon t=%d\n",
			ws.Lanes, ws.NumVectors(), ws.NumVectors()*ws.Lanes, until)
	}

	start := time.Now()
	rep, err := core.SimulateWide(c, ws, until, opts)
	fatal(err)
	wall := time.Since(start)
	addOptGauges(rep.Metrics, ostats)

	fmt.Printf("engine=%s-wide lps=%d lanes=%d vectors=%d vectors/s=%.0f wall=%v\n",
		opts.Engine, rep.Processors, rep.Lanes, rep.Vectors, rep.VectorsPerSec,
		wall.Round(10*time.Microsecond))
	if !quiet {
		if opts.Engine != core.EngineSeq {
			fmt.Printf("counters: %s\n", rep.Stats.Summary(stats.DefaultCostModel()))
		}
		fmt.Printf("final outputs (lane 0):")
		for _, o := range c.Outputs {
			fmt.Printf(" %s=%v", c.Gate(o).Name, rep.Values[o].Get(0))
		}
		fmt.Println()
	}

	if vcdPath != "" {
		init := func(g circuit.GateID) logic.Value {
			return opts.System.Project(circuit.InitialValue(c.Gates[g].Kind))
		}
		wf := rep.Waveform.Lane(0, init)
		f, err := os.Create(vcdPath)
		fatal(err)
		defer f.Close()
		fatal(trace.WriteVCD(f, c, c.Outputs, wf, "1ns"))
		if !quiet {
			fmt.Printf("wrote lane-0 waveform (%d samples) to %s\n", len(wf), vcdPath)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		fatal(err)
		defer f.Close()
		if rep.Metrics == nil {
			fatal(fmt.Errorf("no metrics report produced"))
		}
		fatal(rep.Metrics.WriteJSON(f))
		if !quiet {
			fmt.Printf("metrics: %s -> %s\n", rep.Metrics.Summary(), metricsOut)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		fatal(err)
		defer f.Close()
		fatal(opts.Tracer.WriteJSON(f))
		if !quiet {
			fmt.Printf("trace: %d spans (%d dropped) -> %s\n",
				opts.Tracer.TotalSpans(), opts.Tracer.Dropped(), traceOut)
		}
	}
}

// addOptGauges publishes the optimizer's headline numbers into the run's
// metrics report (cone_count is set by core when -cone-split is active).
func addOptGauges(rep *metrics.Report, st *opt.Stats) {
	if rep == nil || st == nil {
		return
	}
	if rep.Gauges == nil {
		rep.Gauges = make(map[string]float64, 4)
	}
	rep.Gauges["gates_removed"] = float64(st.GatesRemoved)
	rep.Gauges["gates_hashed"] = float64(st.GatesHashed)
	rep.Gauges["levels_before"] = float64(st.LevelsBefore)
	rep.Gauges["levels_after"] = float64(st.LevelsAfter)
}

// makeWideStimulus is makeStimulus on the wide plane: lanes independent
// clocked or random batches sharing the clock waveform but differently
// seeded, packed into word-valued changes.
func makeWideStimulus(c *circuit.Circuit, lanes, vecs int, activity float64,
	period circuit.Tick, seed int64, sys logic.System) (*vectors.WideStimulus, error) {
	for _, clk := range []string{"clk", "CLK", "__CLK"} {
		if _, ok := c.ByName(clk); ok && isInput(c, clk) {
			ws, _, err := vectors.ClockedBatch(c, vectors.ClockedConfig{
				Clock: clk, Cycles: vecs, HalfPeriod: period, Activity: activity, Seed: seed,
			}, lanes, sys)
			return ws, err
		}
	}
	ws, _, err := vectors.RandomBatch(c, vectors.RandomConfig{
		Vectors: vecs, Period: period, Activity: activity, Seed: seed,
	}, lanes, sys)
	return ws, err
}

// loadCircuit resolves the circuit source.
func loadCircuit(benchPath, name string, fine uint64, seed int64) (*circuit.Circuit, error) {
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f)
	}
	delays := gen.Unit
	if fine > 0 {
		delays = gen.Fine(circuit.Tick(fine), seed)
	}
	return gen.ByName(name, delays, seed)
}

// makeStimulus builds clocked stimulus when the circuit has a clock input,
// random vectors otherwise.
func makeStimulus(c *circuit.Circuit, vecs int, activity float64, period circuit.Tick, seed int64) (*vectors.Stimulus, error) {
	for _, clk := range []string{"clk", "CLK", "__CLK"} {
		if _, ok := c.ByName(clk); ok {
			if isInput(c, clk) {
				return vectors.Clocked(c, vectors.ClockedConfig{
					Clock: clk, Cycles: vecs, HalfPeriod: period, Activity: activity, Seed: seed,
				})
			}
		}
	}
	return vectors.Random(c, vectors.RandomConfig{
		Vectors: vecs, Period: period, Activity: activity, Seed: seed,
	})
}

func isInput(c *circuit.Circuit, name string) bool {
	id, ok := c.ByName(name)
	if !ok {
		return false
	}
	return c.Gate(id).Kind == circuit.Input
}

func fatal(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "parsim:", err)
	code := 1
	var se *core.SimError
	if errors.As(err, &se) {
		switch se.Kind {
		case core.KindCausality:
			code = exitCausality
		case core.KindHang:
			code = exitHang
		case core.KindPanic:
			code = exitPanic
		case core.KindEventLimit:
			code = exitEventLimit
		case core.KindShardLoss:
			code = exitShardLoss
		}
	}
	os.Exit(code)
}
