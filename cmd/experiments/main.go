// Command experiments regenerates the paper's figure and the quantitative
// claims of its evaluation discussion as tables. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded full-scale results.
//
// Usage:
//
//	experiments [-run F1,E3,...] [-full] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	full := flag.Bool("full", false, "run at full scale (slow; the configuration recorded in EXPERIMENTS.md)")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	var selected []experiments.Experiment
	if *runFlag == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
