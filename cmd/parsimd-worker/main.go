// Command parsimd-worker is one shard of a distributed parsim run. It
// is launched by the coordinator (parsim -dist with -dist-exec), dials
// back over TCP or a unix socket, receives its job spec, and simulates
// the LPs its shard owns. It is not meant to be run by hand; a captured
// job can nonetheless be replayed by pointing a worker at a listening
// coordinator.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
)

func main() {
	var (
		network = flag.String("network", "tcp", "coordinator network: tcp or unix")
		addr    = flag.String("addr", "", "coordinator address")
		shard   = flag.Int("shard", -1, "this worker's shard index")
		attempt = flag.Int("attempt", 0, "the coordinator's restart counter")
	)
	flag.Parse()
	if *addr == "" || *shard < 0 {
		fmt.Fprintln(os.Stderr, "parsimd-worker: -addr and -shard are required")
		os.Exit(2)
	}
	w := dist.NewWorker(*network, *addr, *shard, *attempt)
	if err := w.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "parsimd-worker: shard %d: %v\n", *shard, err)
		os.Exit(1)
	}
}
