// Command circgen emits generated benchmark circuits as ISCAS-style
// .bench netlists (with the delay-annotation extension when fine delays
// are requested), so other tools — including parsim -bench — can consume
// them.
//
// Example:
//
//	circgen -circuit mul16 -fine-delays 8 -o mul16.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
)

func main() {
	var (
		circName   = flag.String("circuit", "mul8", "circuit: c17, s27, mulN, rippleN, claN, lfsrN, counterN, shiftN, dagN, seqN")
		fineDelays = flag.Uint64("fine-delays", 0, "assign random delays in [1,N] (0 = unit)")
		seed       = flag.Int64("seed", 1, "generator seed")
		out        = flag.String("o", "", "output path (default stdout)")
		statsOnly  = flag.Bool("stats", false, "print structure statistics instead of the netlist")
	)
	flag.Parse()

	c, err := build(*circName, *fineDelays, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}

	if *statsOnly {
		st := c.ComputeStats()
		fmt.Printf("gates=%d inputs=%d outputs=%d ffs=%d latches=%d depth=%d\n",
			st.Gates, st.Inputs, st.Outputs, st.FlipFlops, st.Latches, st.CombDepth)
		fmt.Printf("fanout: avg=%.2f max=%d; delays: %d..%d; connections=%d\n",
			st.AvgFanout, st.MaxFanout, st.MinDelay, st.MaxDelay, st.TotalConns)
		for k, n := range st.ByKind {
			fmt.Printf("  %-8v %d\n", k, n)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := bench.Write(w, c, *circName); err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}

func build(name string, fine uint64, seed int64) (*circuit.Circuit, error) {
	delays := gen.Unit
	if fine > 0 {
		delays = gen.Fine(circuit.Tick(fine), seed)
	}
	return gen.ByName(name, delays, seed)
}
