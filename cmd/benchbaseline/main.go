// Command benchbaseline runs the repository's hot-path benchmark suite
// (internal/benchsuite) via testing.Benchmark and writes the results as
// BENCH_parsim.json — the committed wall-clock and allocation baseline
// that performance PRs diff against.
//
// Usage:
//
//	go run ./cmd/benchbaseline [-benchtime 20x] [-filter Micro|Engine|all] [-o BENCH_parsim.json]
//
// The emitted JSON is deterministic in shape and ordering (one entry per
// suite benchmark, suite order); the measured numbers naturally vary with
// the machine, so diffs against the committed file are judged as ratios,
// not byte equality. Regenerate on a quiet machine with:
//
//	go run ./cmd/benchbaseline -o BENCH_parsim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/benchsuite"
)

// entry is one benchmark's measured baseline.
type entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// baseline is the BENCH_parsim.json document.
type baseline struct {
	Command   string  `json:"command"`
	Go        string  `json:"go"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	BenchTime string  `json:"benchtime"`
	Results   []entry `json:"results"`
}

func main() {
	benchtime := flag.String("benchtime", "20x", "per-benchmark budget (testing -benchtime syntax)")
	filter := flag.String("filter", "all", "which suite slice to run: all, micro, or engines")
	out := flag.String("o", "BENCH_parsim.json", "output path ('-' for stdout)")
	flag.Parse()

	// testing.Benchmark honours the package-level -test.benchtime flag, so
	// the flag set must be initialised and the value injected by name.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}
	flag.Parse() // re-parse so the testing flags take effect

	var suite []benchsuite.Benchmark
	switch *filter {
	case "all":
		suite = benchsuite.All()
	case "micro":
		suite = benchsuite.Micro()
	case "engines":
		suite = benchsuite.Engines()
	default:
		fmt.Fprintf(os.Stderr, "benchbaseline: unknown -filter %q (want all, micro, or engines)\n", *filter)
		os.Exit(2)
	}

	doc := baseline{
		Command:   "go run ./cmd/benchbaseline",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchtime,
	}
	for _, bm := range suite {
		fmt.Fprintf(os.Stderr, "running %-32s ", bm.Name)
		r := testing.Benchmark(bm.Fn)
		e := entry{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Extra[k] = r.Extra[k]
			}
		}
		doc.Results = append(doc.Results, e)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %6d allocs/op\n",
			e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: encode: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Results))
}
