// Command benchbaseline runs the repository's hot-path benchmark suite
// (internal/benchsuite) via testing.Benchmark and writes the results as
// BENCH_parsim.json — the committed wall-clock and allocation baseline
// that performance PRs diff against.
//
// Usage:
//
//	go run ./cmd/benchbaseline [-benchtime 20x] [-filter Micro|Wide|Engine|all] [-o BENCH_parsim.json] [-force]
//
// The emitted JSON is deterministic in shape and ordering (one entry per
// suite benchmark, suite order); the measured numbers naturally vary with
// the machine, so diffs against the committed file are judged as ratios,
// not byte equality. Regenerate on a quiet machine with:
//
//	go run ./cmd/benchbaseline -o BENCH_parsim.json
//
// Every result row records the GOMAXPROCS it ran under, and the document
// carries the full environment fingerprint (Go version, OS, architecture,
// CPU count, GOMAXPROCS). Overwriting an existing baseline whose
// fingerprint differs is refused — a baseline recorded on one machine
// silently replaced by numbers from another is how a wall-clock baseline
// stops meaning anything — pass -force to override deliberately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/benchsuite"
)

// entry is one benchmark's measured baseline.
type entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	// Gomaxprocs is the parallelism the result was measured under. It is
	// recorded per result, not only per document, so rows appended or
	// patched by hand still carry their provenance.
	Gomaxprocs int                `json:"gomaxprocs"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// baseline is the BENCH_parsim.json document.
type baseline struct {
	Command    string  `json:"command"`
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Gomaxprocs int     `json:"gomaxprocs"`
	BenchTime  string  `json:"benchtime"`
	Results    []entry `json:"results"`
}

// fingerprint is the comparable environment identity of a baseline.
func (b *baseline) fingerprint() string {
	return fmt.Sprintf("go=%s goos=%s goarch=%s num_cpu=%d gomaxprocs=%d",
		b.Go, b.GOOS, b.GOARCH, b.NumCPU, b.Gomaxprocs)
}

func main() {
	benchtime := flag.String("benchtime", "20x", "per-benchmark budget (testing -benchtime syntax)")
	filter := flag.String("filter", "all", "which suite slice to run: all, micro, wide, opt, conesplit, adapt, dist, or engines")
	out := flag.String("o", "BENCH_parsim.json", "output path ('-' for stdout)")
	force := flag.Bool("force", false, "overwrite an existing baseline even if its environment fingerprint differs")
	flag.Parse()

	// testing.Benchmark honours the package-level -test.benchtime flag, so
	// the flag set must be initialised and the value injected by name.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}
	flag.Parse() // re-parse so the testing flags take effect

	var suite []benchsuite.Benchmark
	switch *filter {
	case "all":
		suite = benchsuite.All()
	case "micro":
		suite = benchsuite.Micro()
	case "wide":
		suite = benchsuite.Wide()
	case "opt":
		suite = benchsuite.Opt()
	case "conesplit":
		suite = benchsuite.ConeSplit()
	case "adapt":
		suite = benchsuite.Adapt()
	case "dist":
		suite = benchsuite.Dist()
	case "engines":
		suite = benchsuite.Engines()
	default:
		fmt.Fprintf(os.Stderr, "benchbaseline: unknown -filter %q (want all, micro, wide, opt, conesplit, adapt, dist, or engines)\n", *filter)
		os.Exit(2)
	}

	doc := baseline{
		Command:    "go run ./cmd/benchbaseline",
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
	}

	// Fingerprint guard: refuse to replace a baseline measured in a
	// different environment unless forced.
	if *out != "-" {
		if raw, err := os.ReadFile(*out); err == nil {
			var prev baseline
			if err := json.Unmarshal(raw, &prev); err != nil {
				fmt.Fprintf(os.Stderr, "benchbaseline: existing %s is not a baseline document: %v\n(pass -force to overwrite anyway)\n", *out, err)
				if !*force {
					os.Exit(1)
				}
			} else if prev.fingerprint() != doc.fingerprint() {
				fmt.Fprintf(os.Stderr, "benchbaseline: environment fingerprint mismatch with existing %s:\n  recorded: %s\n  current:  %s\n", *out, prev.fingerprint(), doc.fingerprint())
				if !*force {
					fmt.Fprintf(os.Stderr, "refusing to overwrite — numbers from different environments are not comparable (pass -force to override)\n")
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "-force given: overwriting\n")
			}
		}
	}

	for _, bm := range suite {
		fmt.Fprintf(os.Stderr, "running %-32s ", bm.Name)
		r := testing.Benchmark(bm.Fn)
		e := entry{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Gomaxprocs:  runtime.GOMAXPROCS(0),
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Extra[k] = r.Extra[k]
			}
		}
		doc.Results = append(doc.Results, e)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %6d allocs/op\n",
			e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: encode: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchbaseline: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Results))
}
