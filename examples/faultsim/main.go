// Fault grading: the data-parallelism use case from the paper's taxonomy
// ("data parallelism ... is quite effective for fault simulation"). An
// 8x8 array multiplier's collapsed single-stuck-at fault universe is
// graded against random vectors, fanning the independent fault machines
// out across worker goroutines, and the undetected faults are listed so a
// test engineer could target them.
//
// Run with:
//
//	go run ./examples/faultsim
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/vectors"
)

func main() {
	c, err := gen.ArrayMultiplier(8, gen.Unit)
	if err != nil {
		log.Fatal(err)
	}
	st := c.ComputeStats()

	universe := fault.Universe(c)
	collapsed := fault.Collapse(c, universe)
	fmt.Printf("mul8: %d gates; fault universe %d, collapsed %d (%.0f%%)\n",
		st.Gates, len(universe), len(collapsed),
		100*float64(len(collapsed))/float64(len(universe)))

	stim, err := vectors.Random(c, vectors.RandomConfig{
		Vectors: 60, Period: 80, Activity: 0.5, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	until := core.Horizon(c, stim)

	workers := runtime.GOMAXPROCS(0) * 2
	start := time.Now()
	res, err := fault.Run(c, stim, until, collapsed, fault.Config{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graded %d faults on %d workers in %v\n",
		res.Total, workers, time.Since(start).Round(time.Millisecond))
	fmt.Printf("coverage: %.1f%% (%d detected, %d undetected)\n",
		100*res.Coverage, res.Detected, res.Total-res.Detected)

	// Detection-time histogram: how quickly the vector set finds faults.
	if len(res.Detections) > 0 {
		first := res.Detections[0]
		median := res.Detections[len(res.Detections)/2]
		last := res.Detections[len(res.Detections)-1]
		fmt.Printf("detection times: first t=%d, median t=%d, last t=%d\n",
			first.Time, median.Time, last.Time)
	}

	// List the faults the vectors missed — the targets for directed tests.
	detected := map[fault.Fault]bool{}
	for _, dt := range res.Detections {
		detected[dt.Fault] = true
	}
	missed := 0
	for _, f := range collapsed {
		if !detected[f] {
			if missed < 10 {
				fmt.Printf("  undetected: gate %q %s\n", c.Gate(f.Gate).Name, f)
			}
			missed++
		}
	}
	if missed > 10 {
		fmt.Printf("  ... and %d more\n", missed-10)
	}
	if missed == 0 {
		fmt.Println("every collapsed fault detected — the vector set is complete")
	}

	// The same campaign with bit-parallel PPSFP grading: 64 patterns per
	// machine word, fault dropping between passes. Same verdicts, a few
	// orders of magnitude faster.
	patterns := make([][]bool, 60)
	rng := rand.New(rand.NewSource(5))
	for k := range patterns {
		patterns[k] = make([]bool, len(c.Inputs))
		for i := range patterns[k] {
			patterns[k][i] = rng.Intn(2) == 1
		}
	}
	start = time.Now()
	pp, err := fault.GradeBitParallel(c, patterns, collapsed, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPSFP (bit-parallel): %d faults, coverage %.1f%%, in %v\n",
		pp.Total, 100*pp.Coverage, time.Since(start).Round(time.Microsecond))
}
