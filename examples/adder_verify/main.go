// Adder verification: the design-verification workflow the paper's
// introduction motivates. A 16-bit carry-lookahead adder is simulated
// against randomized operand pairs with full timing (fine gate delays),
// every result is checked against Go's own arithmetic, and the output
// waveform of the final vectors is dumped as a VCD file for a waveform
// viewer. Verification runs on the conservative parallel engine, with the
// sequential engine double-checking the waveform.
//
// Run with:
//
//	go run ./examples/adder_verify
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/trace"
	"repro/internal/vectors"
)

const bits = 16

func main() {
	// A carry-lookahead adder with randomized per-gate delays in 1..8
	// ticks: fine timing granularity, the hard case for parallel engines.
	c, err := gen.CLAAdder(bits, gen.Fine(8, 7))
	if err != nil {
		log.Fatal(err)
	}
	st := c.ComputeStats()
	fmt.Printf("cla%d: %d gates, depth %d, delays %d..%d\n",
		bits, st.Gates, st.CombDepth, st.MinDelay, st.MaxDelay)

	// Build operand pairs and the corresponding stimulus by hand so the
	// expected sums are known exactly.
	const trials = 40
	const period = 400 // comfortably beyond the worst settle time
	rng := rand.New(rand.NewSource(99))
	type pair struct {
		a, b uint64
		cin  bool
	}
	cases := make([]pair, trials)
	stim := &vectors.Stimulus{End: trials * period}
	assign := func(t circuit.Tick, name string, bit bool) {
		id, ok := c.ByName(name)
		if !ok {
			log.Fatalf("no input %s", name)
		}
		stim.Changes = append(stim.Changes, vectors.Change{Time: t, Input: id, Value: logic.FromBool(bit)})
	}
	for k := 0; k < trials; k++ {
		cases[k] = pair{rng.Uint64() & (1<<bits - 1), rng.Uint64() & (1<<bits - 1), rng.Intn(2) == 1}
		t := circuit.Tick(k) * period
		for i := 0; i < bits; i++ {
			assign(t, fmt.Sprintf("a%d", i), cases[k].a&(1<<i) != 0)
			assign(t, fmt.Sprintf("b%d", i), cases[k].b&(1<<i) != 0)
		}
		assign(t, "cin", cases[k].cin)
	}
	stim.Sort()
	until := core.Horizon(c, stim)

	// Simulate on the conservative engine, 4 LPs, strings partitioning.
	rep, err := core.Simulate(c, stim, until, core.Options{
		Engine: core.EngineCMB, LPs: 4, Partition: partition.MethodStrings,
		System: logic.TwoValued,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Check each vector's settled sum just before the next vector starts.
	outs := make([]circuit.GateID, bits+1)
	for i := 0; i < bits; i++ {
		outs[i], _ = c.ByName(fmt.Sprintf("s%d", i))
	}
	outs[bits], _ = c.ByName("cout")
	failures := 0
	for k, cs := range cases {
		strobe := circuit.Tick(k+1)*period - 1
		if k == trials-1 {
			strobe = until
		}
		var got uint64
		for i, o := range outs {
			v := rep.Waveform.ValueAt(o, strobe, logic.TwoValued.Project(logic.U))
			if b, ok := v.Bool(); ok && b {
				got |= 1 << i
			}
		}
		want := cs.a + cs.b
		if cs.cin {
			want++
		}
		if got != want {
			failures++
			fmt.Printf("MISMATCH vector %d: %d + %d + %v = %d, want %d\n",
				k, cs.a, cs.b, cs.cin, got, want)
		}
	}
	if failures == 0 {
		fmt.Printf("all %d vectors verified against Go arithmetic ✓\n", trials)
	}

	// Double-check the parallel waveform against the sequential engine.
	ref, err := core.Simulate(c, stim, until, core.Options{
		Engine: core.EngineSeq, System: logic.TwoValued,
	})
	if err != nil {
		log.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, rep.Waveform, 3); d != "" {
		log.Fatalf("parallel waveform differs from sequential:\n%s", d)
	}
	fmt.Println("conservative-parallel waveform identical to sequential ✓")

	// Dump the sum bus waveform for a viewer.
	f, err := os.Create("adder.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteVCD(f, c, c.Outputs, rep.Waveform, "1ns"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote adder.vcd (%d value changes)\n", len(rep.Waveform))
}
