// Algorithm shootout: every synchronization algorithm from the paper's
// Section IV taxonomy runs the same sequential circuit (a randomly
// generated netlist with flip-flops, clocked like an ISCAS-89 benchmark),
// and the run prints a Figure-1-style comparison: modeled speedup, work
// counters, and the overhead each algorithm pays for coordination.
//
// Run with:
//
//	go run ./examples/shootout
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func main() {
	c, err := gen.RandomSeq(gen.RandomConfig{
		Gates: 3000, Inputs: 24, Outputs: 12, Locality: 0.6,
		FFRatio: 0.1, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{
		Clock: "clk", Cycles: 40, HalfPeriod: 60, Activity: 0.5, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	until := core.Horizon(c, stim)
	st := c.ComputeStats()
	fmt.Printf("circuit: %d gates (%d FFs), 40 clock cycles, horizon t=%d\n\n",
		st.Gates, st.FlipFlops, until)

	base, err := core.Simulate(c, stim, until, core.Options{
		Engine: core.EngineSeq, System: logic.TwoValued,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := stats.DefaultCostModel()
	fmt.Printf("%-14s %5s %9s %9s %9s %8s %8s\n",
		"engine", "LPs", "speedup", "evals", "messages", "nulls", "rollbk")
	fmt.Printf("%-14s %5d %9s %9d %9s %8s %8s\n",
		"seq", 1, "1.00", base.SeqWork.Evaluations, "-", "-", "-")

	for _, eng := range []core.Engine{
		core.EngineOblivious, core.EngineSync,
		core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
		core.EngineTimeWarp, core.EngineTimeWarpLazy, core.EngineHybrid,
	} {
		rep, err := core.Simulate(c, stim, until, core.Options{
			Engine: eng, LPs: 8, Partition: partition.MethodFM,
			PartitionSeed: 3, System: logic.TwoValued, IntraWorkers: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Every event-driven engine must agree with the reference exactly;
		// the oblivious engine is cycle-based, so only final values match.
		if eng != core.EngineOblivious {
			if d := trace.Diff(base.Waveform, rep.Waveform, 3); d != "" {
				log.Fatalf("%v diverged from the reference:\n%s", eng, d)
			}
		}
		for g := range base.Values {
			if base.Values[g] != rep.Values[g] {
				log.Fatalf("%v: final value mismatch at gate %d", eng, g)
			}
		}
		tot := rep.Stats.Total()
		fmt.Printf("%-14s %5d %9.2f %9d %9d %8d %8d\n",
			eng, rep.Processors, rep.SpeedupOver(base, model),
			tot.Evaluations, tot.MessagesSent, tot.NullsSent, tot.Rollbacks)
	}
	fmt.Println("\nall engines produced identical results ✓")
	fmt.Println("(speedups are modeled; see internal/stats for the methodology)")
}
