// Quickstart: load the embedded ISCAS-85 c17 benchmark, simulate it with
// the sequential reference engine and with optimistic (Time Warp) parallel
// simulation on four logical processes, and check they agree.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func main() {
	// 1. A circuit: the classic six-NAND c17, shipped with the library.
	c := bench.MustC17()
	st := c.ComputeStats()
	fmt.Printf("c17: %d gates, %d inputs, %d outputs, depth %d\n",
		st.Gates, st.Inputs, st.Outputs, st.CombDepth)

	// 2. Stimulus: 100 random vectors, one every 20 ticks, with each input
	// toggling with probability 0.5 at each vector boundary.
	stim, err := vectors.Random(c, vectors.RandomConfig{
		Vectors: 100, Period: 20, Activity: 0.5, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	until := core.Horizon(c, stim)

	// 3. The sequential reference run.
	ref, err := core.Simulate(c, stim, until, core.Options{
		Engine: core.EngineSeq, System: logic.NineValued,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d evaluations, %d output changes recorded\n",
		ref.SeqWork.Evaluations, len(ref.Waveform))

	// 4. The same workload under Time Warp on 4 LPs with an FM partition.
	tw, err := core.Simulate(c, stim, until, core.Options{
		Engine: core.EngineTimeWarp, LPs: 4, Partition: partition.MethodFM,
		System: logic.NineValued,
	})
	if err != nil {
		log.Fatal(err)
	}
	tot := tw.Stats.Total()
	fmt.Printf("time warp:  %d evaluations, %d rollbacks, %d messages\n",
		tot.Evaluations, tot.Rollbacks, tot.MessagesSent)

	// 5. Parallel simulation must be invisible in the results.
	if d := trace.Diff(ref.Waveform, tw.Waveform, 3); d != "" {
		log.Fatalf("engines disagree:\n%s", d)
	}
	fmt.Println("waveforms identical across engines ✓")
	fmt.Printf("modeled speedup on 4 processors: %.2fx\n",
		tw.SpeedupOver(ref, stats.DefaultCostModel()))

	// 6. Final output values by name.
	for _, o := range c.Outputs {
		fmt.Printf("  output %s = %v\n", c.Gate(o).Name, ref.Values[o])
	}
}
