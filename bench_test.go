// Benchmarks regenerating every experiment table (F1, E2..E14) plus
// per-engine microbenchmarks. Each BenchmarkFigure1/BenchmarkE* entry runs
// the corresponding experiment at quick scale and reports headline numbers
// as custom metrics, so `go test -bench=.` reproduces the full evaluation;
// `cmd/experiments -full` prints the full-scale tables recorded in
// EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/vectors"
)

// benchExperiment runs one experiment per iteration and reports the last
// numeric column of its last row (the headline number) as a metric.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := e.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && len(last.Rows) > 0 {
		row := last.Rows[len(last.Rows)-1]
		for col := len(row) - 1; col >= 0; col-- {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, "headline")
				break
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkScalingProcessors(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkActivityCrossover(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkPartitioners(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkGranularity(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkStateSaving(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkCancellation(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkNullMessages(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkTimingGranularity(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkPresimulation(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkVariance(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkHybrid(b *testing.B)            { benchExperiment(b, "E12") }
func BenchmarkFaultParallel(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkEventQueues(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkDynamicBalancing(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkCriticalPath(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkWordParallel(b *testing.B)      { benchExperiment(b, "E17") }

// benchEngine measures raw wall-clock throughput (events/sec) of one
// engine on a fixed mid-sized workload.
func benchEngine(b *testing.B, engine core.Engine) {
	b.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 2000, Inputs: 32, Outputs: 16, Locality: 0.6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 40, Activity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	until := core.Horizon(c, stim)
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := core.Simulate(c, stim, until, core.Options{
			Engine: engine, LPs: 8, Partition: partition.MethodFM, System: logic.TwoValued,
		})
		if err != nil {
			b.Fatal(err)
		}
		if engine == core.EngineSeq {
			events = rep.SeqWork.EventsApplied
		} else if tot := rep.Stats.Total(); tot.EventsApplied > 0 {
			events = tot.EventsApplied
		} else {
			// The oblivious engine has no events; count evaluations.
			events = tot.Evaluations
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEngineSeq(b *testing.B)       { benchEngine(b, core.EngineSeq) }
func BenchmarkEngineOblivious(b *testing.B) { benchEngine(b, core.EngineOblivious) }
func BenchmarkEngineSync(b *testing.B)      { benchEngine(b, core.EngineSync) }
func BenchmarkEngineCMB(b *testing.B)       { benchEngine(b, core.EngineCMB) }
func BenchmarkEngineTimeWarp(b *testing.B)  { benchEngine(b, core.EngineTimeWarp) }
func BenchmarkEngineHybrid(b *testing.B)    { benchEngine(b, core.EngineHybrid) }

// BenchmarkSeqBySize reports sequential engine scaling with circuit size.
func BenchmarkSeqBySize(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("gates=%d", n), func(b *testing.B) {
			c, err := gen.RandomDAG(gen.RandomConfig{Gates: n, Inputs: 8 + n/64, Outputs: 4 + n/128, Locality: 0.6, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 40, Activity: 0.5, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			until := core.Horizon(c, stim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineSeq, System: logic.TwoValued}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionMethods reports wall time of each heuristic.
func BenchmarkPartitionMethods(b *testing.B) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 4000, Inputs: 64, Outputs: 32, Locality: 0.6, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []partition.Method{
		partition.MethodStrings, partition.MethodCones, partition.MethodKL,
		partition.MethodFM, partition.MethodAnneal,
	} {
		b.Run(m.String(), func(b *testing.B) {
			var cut int
			for i := 0; i < b.N; i++ {
				p, err := partition.New(m, c, 8, partition.Options{Seed: int64(i), AnnealMoves: 100_000})
				if err != nil {
					b.Fatal(err)
				}
				cut = p.CutLinks(c)
			}
			b.ReportMetric(float64(cut), "cut-links")
		})
	}
}

// BenchmarkHotPaths runs the committed wall-clock baseline suite
// (internal/benchsuite): allocation microbenchmarks for the per-event hot
// paths plus one end-to-end run per engine. cmd/benchbaseline executes the
// same suite to regenerate BENCH_parsim.json.
func BenchmarkHotPaths(b *testing.B) {
	for _, bm := range benchsuite.All() {
		b.Run(bm.Name, bm.Fn)
	}
}
