// Package repro is a gate-level parallel logic simulation framework
// reproducing R.D. Chamberlain, "Parallel Logic Simulation of VLSI
// Systems", DAC 1995.
//
// The implementation lives under internal/: the circuit model, IEEE-1164
// multi-valued logic, ISCAS netlist I/O, circuit generators, partitioning
// heuristics, and six simulation engines (sequential reference, oblivious,
// synchronous, conservative, optimistic, hybrid). The unified entry point
// is internal/core.Simulate; runnable programs live in cmd/ and examples/.
// See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
